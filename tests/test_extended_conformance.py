"""Extended conformance corpus: corner cases beyond the 94-test suite.

The paper's suite "focuses on exercising the main semantic choices"; the
programs here probe the corners around those choices -- interactions of
ghost state, exposure, derivation, and bounds that the main suite
touches only once each.
"""

import pytest

from repro.errors import OutcomeKind, TrapKind, UB
from repro.impls import by_name
from tests.conftest import run_abstract, run_hardware


def expect_exit(src, status=0):
    out = run_abstract(src)
    assert out.kind is OutcomeKind.EXIT, (out.describe(), out.detail)
    assert out.exit_status == status, out.describe()
    return out


def expect_ub(src, ub=None):
    out = run_abstract(src)
    assert out.kind is OutcomeKind.UNDEFINED, (out.describe(), out.detail)
    if ub is not None:
        assert out.ub is ub, out.describe()
    return out


class TestGhostStateCorners:
    def test_ghost_survives_store_and_load(self):
        """A ghost-marked intptr stored to memory and reloaded is still
        unusable (S3.3: loads/stores of such values are allowed; access
        through them is not)."""
        expect_ub("""
#include <stdint.h>
uintptr_t box;
int main(void) {
  int x[2];
  uintptr_t u = (uintptr_t)x;
  box = u + (1 << 22);          /* non-representable excursion */
  box = box - (1 << 22);        /* back in range, ghost sticky */
  int *p = (int *)box;
  return *p;
}
""", UB.CHERI_UNDEFINED_TAG)

    def test_ghost_does_not_leak_into_fresh_derivation(self):
        """Deriving from the *clean* original stays clean even after a
        ghosted sibling value was created."""
        expect_exit("""
#include <stdint.h>
int main(void) {
  int x[2];
  x[1] = 5;
  uintptr_t u = (uintptr_t)x;
  uintptr_t ghosted = u + (1 << 22);   /* ghost on this value only */
  (void)ghosted;
  int *p = (int *)(u + sizeof(int));   /* fresh derivation from u */
  return *p - 5;
}
""")

    def test_address_defined_after_double_excursion(self):
        expect_exit("""
#include <stdint.h>
int main(void) {
  int x;
  uintptr_t u = (uintptr_t)&x;
  uintptr_t v = u + (1 << 30);
  v = v - (1 << 29);
  v = v - (1 << 29);
  return v == u ? 0 : 1;      /* the integer value is exact */
}
""")

    def test_memcpy_of_ghosted_value_allowed(self):
        """memcpy of a ghost-marked capability must not be UB (S3.3:
        'otherwise memcpy of such values would become UB')."""
        expect_exit("""
#include <stdint.h>
#include <string.h>
int main(void) {
  int x[2];
  uintptr_t u = (uintptr_t)x + (1 << 22);   /* ghosted */
  uintptr_t copy;
  memcpy(&copy, &u, sizeof u);
  return copy == (uintptr_t)x + (1 << 22) ? 0 : 1;
}
""")


class TestExposureCorners:
    def test_exposure_is_permanent(self):
        expect_exit("""
#include <stdint.h>
int main(void) {
  int x = 3;
  (void)(ptraddr_t)&x;               /* expose once */
  /* Much later, an integer-built pointer still gets provenance
     (though never a tag). */
  int probe;
  ptraddr_t a = (ptraddr_t)&probe - ((ptraddr_t)&probe - (ptraddr_t)&x);
  int *p = (int *)(uintptr_t)a;
  return p == &x ? 0 : 1;
}
""")

    def test_struct_member_exposure_via_whole_object(self):
        expect_exit("""
#include <stdint.h>
struct pair { int a; int b; };
int main(void) {
  struct pair s;
  s.b = 9;
  (void)(ptraddr_t)&s;               /* expose the whole object */
  ptraddr_t addr = (ptraddr_t)&s + sizeof(int);
  int *pb = (int *)(uintptr_t)addr;
  return pb == &s.b ? 0 : 1;
}
""")


class TestBoundsChains:
    def test_repeated_narrowing_is_monotone(self):
        expect_exit("""
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  char buf[256];
  char *p = buf;
  for (int len = 256; len >= 4; len /= 2) {
    p = cheri_bounds_set(p, len);
    assert(cheri_tag_get(p));
    assert(cheri_length_get(p) == (size_t)len);
  }
  p[0] = 1;
  p[3] = 2;
  return p[0] + p[3] - 3;
}
""")

    def test_narrow_then_offset_then_access(self):
        expect_ub("""
#include <cheriintrin.h>
int main(void) {
  char buf[64];
  buf[32] = 1;
  char *narrow = cheri_bounds_set(buf, 16);
  char *q = cheri_address_set(narrow, cheri_address_get(buf) + 32);
  return *q;      /* address moved past narrowed bounds */
}
""")

    def test_offset_set_relative_to_base(self):
        expect_exit("""
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int a[8];
  a[5] = 7;
  int *p = &a[2];
  int *q = cheri_offset_set(p, 5 * sizeof(int));
  assert(cheri_address_get(q) == cheri_base_get(p) + 5 * sizeof(int));
  return *q - 7;
}
""")


class TestDerivationCorners:
    def test_compound_assign_derives_from_target(self):
        expect_exit("""
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int a[4];
  a[1] = 6;
  uintptr_t u = (uintptr_t)a;
  u += sizeof(int);          /* derivation from u (the left side) */
  assert(cheri_tag_get(u));
  return *(int *)u - 6;
}
""")

    def test_ternary_keeps_capability(self):
        expect_exit("""
#include <stdint.h>
#include <cheriintrin.h>
int main(void) {
  int x = 4;
  intptr_t a = (intptr_t)&x;
  intptr_t b = 0;
  intptr_t chosen = 1 ? a : b;
  return *(int *)chosen - 4;
}
""")

    def test_subtraction_of_caps_derives_left(self):
        """cap - cap derives from the left: the (small) difference value
        is far outside the left cap's representable window, so the
        result is ghost-marked but its integer value is exact."""
        expect_exit("""
#include <stdint.h>
int main(void) {
  int a[8];
  uintptr_t lo = (uintptr_t)&a[0];
  uintptr_t hi = (uintptr_t)&a[6];
  uintptr_t delta = hi - lo;
  return delta == 6 * sizeof(int) ? 0 : 1;
}
""")

    def test_shift_keeps_derivation(self):
        expect_exit("""
#include <stdint.h>
int main(void) {
  int x;
  uintptr_t u = (uintptr_t)&x;
  uintptr_t page = (u >> 12) << 12;    /* page-align: classic idiom */
  return page <= u && u - page < 4096 ? 0 : 1;
}
""")


class TestMemcpyPhases:
    def test_offset_copy_within_buffers(self):
        """A capability copied between *interior* (but aligned and
        phase-matching) slots survives."""
        expect_exit("""
#include <string.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int x;
  int *bufA[4];
  int *bufB[4];
  bufA[2] = &x;
  memcpy(&bufB[2], &bufA[2], sizeof(int*));
  assert(cheri_tag_get(bufB[2]));
  return 0;
}
""")

    def test_wide_copy_preserves_all(self):
        expect_exit("""
#include <string.h>
#include <cheriintrin.h>
int main(void) {
  int v[8];
  int *src[8];
  int *dst[8];
  for (int i = 0; i < 8; i++) { v[i] = i; src[i] = &v[i]; }
  memcpy(dst, src, sizeof src);
  int total = 0;
  for (int i = 0; i < 8; i++) {
    if (!cheri_tag_get(dst[i])) return 99;
    total += *dst[i];
  }
  return total - 28;
}
""")

    def test_memcmp_of_capability_bytes(self):
        """memcmp over pointer representations is legal and compares the
        (address-containing) bytes."""
        expect_exit("""
#include <string.h>
int main(void) {
  int x;
  int *a = &x;
  int *b = &x;
  return memcmp(&a, &b, sizeof a);   /* identical representations */
}
""")


class TestHardwareOnlyCorners:
    def test_gap_access_succeeds_on_hardware_only(self):
        """The allocator padding gap (S3.2): hardware allows it, the
        abstract machine does not -- provenance is the tighter net."""
        src = """
#include <stdlib.h>
#include <cheriintrin.h>
int main(void) {
  char *p = malloc(1000001);
  size_t len = cheri_length_get(p);
  if (len == 1000001) return 0;      /* no padding: vacuous */
  p[1000001] = 1;                     /* in cap bounds, out of object */
  return 0;
}
"""
        out_hw = run_hardware(src)
        assert out_hw.kind is OutcomeKind.EXIT
        out_abs = run_abstract(src)
        assert out_abs.ub is UB.ACCESS_OUT_OF_BOUNDS

    def test_wrapping_unsigned_arithmetic_on_hardware(self):
        src = """
int main(void) {
  unsigned u = 0;
  u = u - 1;
  return u == 4294967295u ? 0 : 1;
}
"""
        assert run_abstract(src).ok
        assert run_hardware(src).ok

    def test_cheriot_hardware_runs_portable_code(self):
        src = """
#include <stdint.h>
int main(void) {
  long total = 0;
  int a[4] = {1, 2, 3, 4};
  for (int i = 0; i < 4; i++) total += a[i];
  uintptr_t u = (uintptr_t)a;
  total += *(int *)(u + 2 * sizeof(int));
  return (int)(total - 13);
}
"""
        assert by_name("cheriot-O0").run(src).ok
