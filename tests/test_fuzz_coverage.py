"""The coverage signal: unit behaviour and the determinism property.

The guided campaign's contract is that coverage is a *pure function of
the program*: the property test here runs step-identical campaigns
under every ``--evaluator`` choice and serial vs ``--jobs 4`` and
requires the resulting corpora -- whose seed entries embed the
coverage sets that earned admission -- to be byte-for-byte identical.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.coreeval import default_evaluator, set_default_evaluator
from repro.fuzz.campaign import run_campaign
from repro.fuzz.coverage import (
    Coverage,
    coverage_from_events,
    coverage_of,
)
from repro.fuzz.driver import program_for


@pytest.fixture(autouse=True)
def _restore_default_evaluator():
    before = default_evaluator()
    yield
    set_default_evaluator(before)


def _tree(directory) -> dict[str, bytes]:
    directory = pathlib.Path(directory)
    return {str(path.relative_to(directory)): path.read_bytes()
            for path in sorted(directory.rglob("*")) if path.is_file()}


# ---------------------------------------------------------------------------
# Unit behaviour


def test_coverage_keys_are_namespaced():
    cov = Coverage(ops=frozenset({"main:3"}),
                   ub=frozenset({"UB_X"}),
                   events=frozenset({"mem.load"}))
    assert cov.keys() == {"op:main:3", "ub:UB_X", "ev:mem.load"}


def test_coverage_union_and_roundtrip():
    a = Coverage(ops=frozenset({"main:1"}), events=frozenset({"mem.load"}))
    b = Coverage(ops=frozenset({"main:2"}), ub=frozenset({"UB_X"}))
    merged = a.union(b)
    assert merged.ops == {"main:1", "main:2"}
    assert merged.ub == {"UB_X"}
    assert Coverage.from_dict(merged.to_dict()) == merged
    # JSON form is deterministic: sorted lists, stable key names.
    assert merged.to_dict()["ops"] == ["main:1", "main:2"]


def test_coverage_from_events_collects_all_three_axes():
    events = [
        {"kind": "mem.load", "core_op": "main:7"},
        {"kind": "check.ub", "ub": "UB_X", "core_op": "main:8"},
        {"kind": "intrinsic.call", "name": "cheri_tag_get"},
        {"kind": "mem.store"},
    ]
    cov = coverage_from_events(events)
    assert cov.ops == {"main:7", "main:8"}
    assert cov.ub == {"UB_X"}
    assert "check.ub:UB_X" in cov.events
    assert "intrinsic.call:cheri_tag_get" in cov.events
    assert "mem.store" in cov.events


def test_coverage_of_reaches_core_ops():
    probe = coverage_of(program_for(0, 0))
    # The traced reference run under the pinned Core evaluator
    # attributes events to function:index op ids.
    assert probe.coverage.ops
    assert all(":" in op for op in probe.coverage.ops)
    assert probe.coverage.events
    assert probe.signature is not None


# ---------------------------------------------------------------------------
# The determinism property (satellite: evaluator- and jobs-independence)


def test_coverage_probe_is_evaluator_independent():
    """coverage_of pins its own evaluator: the process default must not
    leak into the signal."""
    program = program_for(1, 3)
    probes = []
    for evaluator in ("ast", "core", "compiled"):
        set_default_evaluator(evaluator)
        probes.append(coverage_of(program))
    assert probes[0].coverage == probes[1].coverage == probes[2].coverage
    assert probes[0].signature == probes[1].signature == probes[2].signature


@pytest.fixture(scope="module")
def baseline_tree(tmp_path_factory) -> dict[str, bytes]:
    directory = tmp_path_factory.mktemp("campaign-baseline")
    before = default_evaluator()
    try:
        run_campaign(seed=11, iterations=6, corpus_dir=directory,
                     evaluator="core", jobs=1)
    finally:
        set_default_evaluator(before)
    return _tree(directory)


@pytest.mark.parametrize("evaluator", ["ast", "core", "compiled"])
@pytest.mark.parametrize("jobs", [1, 4])
def test_campaign_coverage_identical_across_evaluator_and_jobs(
        tmp_path, baseline_tree, evaluator, jobs):
    """Two step-identical campaigns yield identical coverage sets (and
    therefore byte-identical corpora) whatever executes them."""
    candidate_dir = tmp_path / f"{evaluator}-{jobs}"
    report = run_campaign(seed=11, iterations=6,
                          corpus_dir=candidate_dir,
                          evaluator=evaluator, jobs=jobs)
    assert not report.quarantined
    assert _tree(candidate_dir) == baseline_tree
