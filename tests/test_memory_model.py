"""The memory object model: allocation, the S4.3 load/store rule, ghost
state, and temporal behaviour."""

import pytest

from repro.capability.permissions import Permission
from repro.ctypes import (
    ArrayT, CHAR, Field, INT, INTPTR, LONG, Pointer, StructT, UCHAR,
    UINTPTR, UnionT,
)
from repro.errors import (
    CheriTrap, MemoryModelError, TrapKind, UB, UndefinedBehaviour,
)
from repro.memory import (
    IntegerValue, MVArray, MVInteger, MVPointer, MVStruct, MVUnion,
    MVUnspecified,
)
from repro.memory.allocation import AllocKind


def iv(n: int) -> MVInteger:
    return MVInteger(INT, IntegerValue.of_int(n))


class TestAllocation:
    def test_object_bounds_exact(self, model):
        p = model.allocate_object(INT, AllocKind.STACK, "x")
        assert p.cap.tag
        assert p.cap.base == p.address
        assert p.cap.length == 4

    def test_fresh_object_is_unspecified(self, model):
        p = model.allocate_object(INT, AllocKind.STACK, "x")
        assert isinstance(model.load(INT, p), MVUnspecified)

    def test_readonly_object_has_no_store_perms(self, model):
        p = model.allocate_object(INT, AllocKind.GLOBAL, "c", readonly=True)
        assert not p.cap.has_perm(Permission.STORE)
        assert p.cap.has_perm(Permission.LOAD)

    def test_region_padded_for_representability(self, model):
        p = model.allocate_region(1000001)
        assert p.cap.tag
        assert p.cap.length >= 1000001
        alloc = model.allocation_of(p)
        assert alloc.cap_size >= p.cap.length

    def test_function_allocation_is_sentry(self, model):
        p = model.allocate_function("f")
        assert p.cap.tag
        assert p.cap.otype.is_sentry
        assert p.cap.has_perm(Permission.EXECUTE)
        assert not p.cap.has_perm(Permission.STORE)

    def test_string_allocation(self, model):
        p = model.allocate_string(b"hi")
        v0 = model.load(CHAR, p)
        assert v0.ival.value() == ord("h")

    def test_stack_reuse_clears_stale_contents(self, model):
        mark = model.stack_mark()
        p = model.allocate_object(INT, AllocKind.STACK, "a")
        model.store(INT, p, iv(7))
        model.kill_allocation(p.prov.ident)
        model.stack_release(mark)
        q = model.allocate_object(INT, AllocKind.STACK, "b")
        assert q.address == p.address
        assert isinstance(model.load(INT, q), MVUnspecified)


class TestLoadStoreRule:
    def test_roundtrip_int(self, model):
        p = model.allocate_object(INT, AllocKind.STACK, "x")
        model.store(INT, p, iv(-42))
        assert model.load(INT, p).ival.value() == -42

    def test_roundtrip_pointer_preserves_everything(self, model):
        x = model.allocate_object(LONG, AllocKind.STACK, "x")
        slot = model.allocate_object(Pointer(LONG), AllocKind.STACK, "p")
        model.store(Pointer(LONG), slot, MVPointer(Pointer(LONG), x))
        out = model.load(Pointer(LONG), slot)
        assert out.ptr.cap.equal_exact(x.cap)
        assert out.ptr.prov == x.prov

    def test_null_deref(self, model):
        with pytest.raises(UndefinedBehaviour) as exc:
            model.load(INT, model.null_pointer())
        assert exc.value.ub is UB.NULL_DEREFERENCE

    def test_untagged_deref(self, model):
        x = model.allocate_object(INT, AllocKind.STACK, "x")
        bad = x.with_cap(x.cap.with_tag(False))
        with pytest.raises(UndefinedBehaviour) as exc:
            model.load(INT, bad)
        assert exc.value.ub is UB.CHERI_INVALID_CAP

    def test_ghost_tag_checked_before_tag(self, model):
        x = model.allocate_object(INT, AllocKind.STACK, "x")
        ghosted = x.with_cap(
            x.cap.with_ghost(x.cap.ghost.with_tag_unspecified()))
        with pytest.raises(UndefinedBehaviour) as exc:
            model.load(INT, ghosted)
        assert exc.value.ub is UB.CHERI_UNDEFINED_TAG

    def test_bounds_violation(self, model):
        x = model.allocate_object(INT, AllocKind.STACK, "x")
        past = x.with_cap(x.cap.with_address(x.address + 4))
        with pytest.raises(UndefinedBehaviour) as exc:
            model.load(INT, past)
        assert exc.value.ub is UB.CHERI_BOUNDS_VIOLATION

    def test_permission_violation(self, model):
        x = model.allocate_object(INT, AllocKind.STACK, "x")
        ro = x.with_cap(x.cap.without_perms(Permission.STORE))
        with pytest.raises(UndefinedBehaviour) as exc:
            model.store(INT, ro, iv(1))
        assert exc.value.ub is UB.CHERI_INSUFFICIENT_PERMISSIONS

    def test_sealed_deref(self, model):
        from repro.capability.otype import OType
        x = model.allocate_object(INT, AllocKind.STACK, "x")
        sealed = x.with_cap(x.cap.sealed_with(OType.user(0)))
        with pytest.raises(UndefinedBehaviour) as exc:
            model.load(INT, sealed)
        assert exc.value.ub is UB.CHERI_INVALID_CAP

    def test_write_to_const_allocation(self, model):
        c = model.allocate_object(INT, AllocKind.GLOBAL, "c", readonly=True)
        model.store(INT, c, iv(5), initialising=True)   # loader write OK
        # A store via a capability that somehow kept STORE perm still
        # violates the allocation's constness:
        writable = c.with_cap(
            model.arch.root_capability().set_bounds(c.address, 4)[0])
        with pytest.raises(UndefinedBehaviour) as exc:
            model.store(INT, writable, iv(6))
        assert exc.value.ub is UB.WRITE_TO_CONST

    def test_misaligned_capability_access(self, model):
        buf = model.allocate_object(ArrayT(elem=UCHAR, length=64),
                                    AllocKind.STACK, "buf")
        off = buf.with_cap(buf.cap.with_address(buf.address + 1))
        with pytest.raises(UndefinedBehaviour) as exc:
            model.load(Pointer(INT), off)
        assert exc.value.ub is UB.MISALIGNED_ACCESS

    def test_dead_allocation_access(self, model):
        x = model.allocate_object(INT, AllocKind.STACK, "x")
        model.store(INT, x, iv(5))
        model.kill_allocation(x.prov.ident)
        with pytest.raises(UndefinedBehaviour) as exc:
            model.load(INT, x)
        assert exc.value.ub is UB.ACCESS_DEAD_ALLOCATION


class TestRepresentationWrites:
    """S3.5: non-capability writes over capabilities."""

    def _stored_pointer(self, model):
        x = model.allocate_object(INT, AllocKind.STACK, "x")
        slot = model.allocate_object(Pointer(INT), AllocKind.STACK, "p")
        model.store(Pointer(INT), slot, MVPointer(Pointer(INT), x))
        return x, slot

    def test_byte_write_makes_tag_unspecified(self, model):
        x, slot = self._stored_pointer(model)
        byte_view = slot.with_cap(slot.cap)
        b = model.load(UCHAR, byte_view)
        model.store(UCHAR, byte_view, b)
        out = model.load(Pointer(INT), slot)
        assert out.ptr.cap.ghost.tag_unspecified
        with pytest.raises(UndefinedBehaviour) as exc:
            model.load(INT, out.ptr)
        assert exc.value.ub is UB.CHERI_UNDEFINED_TAG

    def test_int_write_over_fresh_slot_is_determinate(self, model):
        slot = model.allocate_object(INT, AllocKind.STACK, "i")
        model.store(INT, slot, iv(7))
        meta = model.state.capmeta_at(model.state.cap_align_down(
            slot.address))
        assert not meta.tag if meta else True

    def test_partial_capability_read_is_ub012(self, model):
        x, slot = self._stored_pointer(model)
        # Overwrite the first 8 bytes with a long; remaining 8 bytes of
        # the old capability stay -- then deallocate... simpler: store a
        # long over half and read back at pointer type.
        model.store(LONG, slot, MVInteger(LONG, IntegerValue.of_int(1)))
        out = model.load(Pointer(INT), slot)   # bytes all specified
        assert not out.ptr.cap.tag or out.ptr.cap.ghost.tag_unspecified

    def test_hardware_byte_write_clears_tag(self, hw_model):
        x, slot = self._stored_pointer(hw_model)
        b = hw_model.load(UCHAR, slot)
        hw_model.store(UCHAR, slot, b)
        out = hw_model.load(Pointer(INT), slot)
        assert not out.ptr.cap.tag
        with pytest.raises(CheriTrap) as exc:
            hw_model.load(INT, out.ptr)
        assert exc.value.kind is TrapKind.TAG_VIOLATION


class TestAggregates:
    def test_struct_roundtrip(self, model):
        s = StructT(tag="pt", fields=(Field("x", INT), Field("y", INT)))
        p = model.allocate_object(s, AllocKind.STACK, "pt")
        model.store(s, p, MVStruct(s, (("x", iv(1)), ("y", iv(2)))))
        out = model.load(s, p)
        assert out.member("x").ival.value() == 1
        assert out.member("y").ival.value() == 2

    def test_array_roundtrip(self, model):
        t = ArrayT(elem=INT, length=3)
        p = model.allocate_object(t, AllocKind.STACK, "a")
        model.store(t, p, MVArray(t, (iv(1), iv(2), iv(3))))
        out = model.load(t, p)
        assert [e.ival.value() for e in out.elems] == [1, 2, 3]

    def test_union_stores_active_member(self, model):
        u = UnionT(tag="pun", fields=(
            Field("p", Pointer(INT)), Field("i", INTPTR)))
        x = model.allocate_object(INT, AllocKind.STACK, "x")
        pu = model.allocate_object(u, AllocKind.STACK, "u")
        model.store(u, pu, MVUnion(u, active="p",
                                   value=MVPointer(Pointer(INT), x)))
        # Reading the other member sees the same capability (S3.4).
        out = model.load(INTPTR, pu)
        assert out.ival.cap is not None
        assert out.ival.cap.equal_exact(x.cap)


class TestFreeRealloc:
    def test_free_then_access_is_ub(self, model):
        p = model.allocate_region(16)
        model.free(p)
        with pytest.raises(UndefinedBehaviour) as exc:
            model.load(UCHAR, p)
        assert exc.value.ub is UB.ACCESS_DEAD_ALLOCATION

    def test_double_free(self, model):
        p = model.allocate_region(16)
        model.free(p)
        with pytest.raises(UndefinedBehaviour) as exc:
            model.free(p)
        assert exc.value.ub is UB.DOUBLE_FREE

    def test_free_interior_pointer(self, model):
        p = model.allocate_region(16)
        inner = p.with_cap(p.cap.with_address(p.address + 4))
        with pytest.raises(UndefinedBehaviour) as exc:
            model.free(inner)
        assert exc.value.ub is UB.FREE_NON_MATCHING

    def test_free_stack_object(self, model):
        x = model.allocate_object(INT, AllocKind.STACK, "x")
        with pytest.raises(UndefinedBehaviour) as exc:
            model.free(x)
        assert exc.value.ub is UB.FREE_NON_MATCHING

    def test_free_null_is_noop(self, model):
        model.free(model.null_pointer())

    def test_realloc_copies_and_kills(self, model):
        p = model.allocate_region(8)
        model.store(LONG, p, MVInteger(LONG, IntegerValue.of_int(11)))
        q = model.realloc(p, 64)
        assert q.address != p.address
        assert model.load(LONG, q).ival.value() == 11
        with pytest.raises(UndefinedBehaviour):
            model.load(LONG, p)

    def test_hardware_use_after_free_succeeds(self, hw_model):
        p = hw_model.allocate_region(8)
        hw_model.store(LONG, p, MVInteger(LONG, IntegerValue.of_int(9)))
        hw_model.free(p)
        assert hw_model.load(LONG, p).ival.value() == 9
