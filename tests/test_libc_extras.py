"""The extended libc surface: string helpers and overlap semantics."""

import pytest

from repro.errors import OutcomeKind, UB
from tests.conftest import run_abstract, run_hardware


def expect_exit(src, status=0):
    out = run_abstract(src)
    assert out.kind is OutcomeKind.EXIT, (out.describe(), out.detail)
    assert out.exit_status == status
    return out


class TestStringHelpers:
    def test_strcat(self):
        expect_exit("""
#include <string.h>
int main(void) {
  char buf[16] = "ab";
  strcat(buf, "cd");
  strcat(buf, "ef");
  return strcmp(buf, "abcdef");
}""")

    def test_strncpy_pads_with_nul(self):
        expect_exit("""
#include <string.h>
int main(void) {
  char dst[8];
  strncpy(dst, "ab", 8);
  for (int i = 2; i < 8; i++) if (dst[i] != 0) return 1;
  return 0;
}""")

    def test_strchr_found_and_missing(self):
        expect_exit("""
#include <string.h>
int main(void) {
  char s[8] = "hello";
  if (strchr(s, 'l') != s + 2) return 1;
  if (strchr(s, 'q') != 0) return 2;
  if (strchr(s, 0) == 0) return 3;   /* finds the terminator? */
  return 0;
}""")

    def test_memchr_bounded(self):
        expect_exit("""
#include <string.h>
int main(void) {
  char s[8] = "abcabc";
  if (memchr(s, 'c', 2) != 0) return 1;   /* stops at n */
  if (memchr(s, 'c', 3) != s + 2) return 2;
  return 0;
}""")

    def test_strcat_oob_is_caught(self):
        out = run_abstract("""
#include <string.h>
int main(void) {
  char tiny[4] = "ab";
  strcat(tiny, "cdefgh");   /* overflows tiny */
  return 0;
}""")
        assert out.kind is OutcomeKind.UNDEFINED

    def test_capabilities_in_strings_stay_bounded(self):
        """String functions inherit the caller's capability bounds: the
        classic strcpy overflow is deterministically caught."""
        src = """
#include <string.h>
int main(void) {
  char dst[4];
  strcpy(dst, "much too long");
  return 0;
}
"""
        assert run_abstract(src).kind is OutcomeKind.UNDEFINED
        assert run_hardware(src).kind is OutcomeKind.TRAP


class TestMemmoveOverlap:
    def test_forward_overlap(self):
        expect_exit("""
#include <string.h>
int main(void) {
  char b[10] = "abcdef";
  memmove(b + 2, b, 4);
  return strncmp(b, "ababcd", 6);
}""")

    def test_backward_overlap(self):
        expect_exit("""
#include <string.h>
int main(void) {
  char b[10] = "abcdef";
  memmove(b, b + 2, 4);
  return strncmp(b, "cdef", 4);
}""")

    def test_overlapping_capability_move(self):
        """Aligned overlapped moves of capability arrays still preserve
        tags (the snapshot semantics of S3.5 memcpy)."""
        expect_exit("""
#include <string.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int a = 1, b = 2, c = 3;
  int *arr[4] = { &a, &b, &c, 0 };
  memmove(arr + 1, arr, 3 * sizeof(int*));
  assert(cheri_tag_get(arr[1]) && cheri_tag_get(arr[2])
         && cheri_tag_get(arr[3]));
  return *arr[1] + *arr[2] + *arr[3] - 6;
}""")
