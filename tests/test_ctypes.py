"""The CHERI C type system: sizes, ranks, struct layout (S3.3, S3.7)."""

import pytest

from repro.capability import CHERIOT, MORELLO
from repro.ctypes import (
    ArrayT, BOOL, CHAR, compatible, Field, FuncT, IKind, INT, Integer,
    INTPTR, LLONG, LONG, Pointer, PTRADDR, SHORT, SIZE_T, strip_const,
    StructT, TargetLayout, UCHAR, UINT, UINTPTR, ULONG, UnionT, VOID, Void,
)
from repro.errors import CTypeError


@pytest.fixture
def layout():
    return TargetLayout(MORELLO)


@pytest.fixture
def layout32():
    return TargetLayout(CHERIOT)


class TestIntegerProperties:
    def test_sizes_64(self, layout):
        assert layout.int_size(IKind.CHAR) == 1
        assert layout.int_size(IKind.SHORT) == 2
        assert layout.int_size(IKind.INT) == 4
        assert layout.int_size(IKind.LONG) == 8
        assert layout.int_size(IKind.PTRADDR) == 8
        # (u)intptr_t storage is a whole capability (S3.3):
        assert layout.int_size(IKind.INTPTR) == 16
        assert layout.int_size(IKind.UINTPTR) == 16

    def test_sizes_32(self, layout32):
        assert layout32.int_size(IKind.LONG) == 4
        assert layout32.int_size(IKind.PTRADDR) == 4
        assert layout32.int_size(IKind.INTPTR) == 8

    def test_value_width_of_intptr_is_address_width(self, layout, layout32):
        assert layout.value_width(IKind.INTPTR) == 64
        assert layout32.value_width(IKind.INTPTR) == 32

    def test_ranges(self, layout):
        assert layout.int_max(IKind.INT) == 2**31 - 1
        assert layout.int_min(IKind.INT) == -(2**31)
        assert layout.int_max(IKind.UINT) == 2**32 - 1
        assert layout.int_min(IKind.UINT) == 0
        assert layout.int_max(IKind.INTPTR) == 2**63 - 1

    def test_wrap_signed(self, layout):
        assert layout.wrap(IKind.INT, 2**31) == -(2**31)
        assert layout.wrap(IKind.INT, -1) == -1
        assert layout.wrap(IKind.UINT, -1) == 2**32 - 1

    def test_in_range(self, layout):
        assert layout.in_range(IKind.CHAR, 100)
        assert not layout.in_range(IKind.CHAR, 200)   # char is signed here
        assert layout.in_range(IKind.UCHAR, 200)

    def test_intptr_has_maximal_rank(self, layout):
        """S3.7: no standard integer type outranks (u)intptr_t."""
        for kind in IKind:
            if kind in (IKind.INTPTR, IKind.UINTPTR):
                continue
            assert layout.rank(kind) < layout.rank(IKind.INTPTR)
        assert layout.rank(IKind.INTPTR) == layout.rank(IKind.UINTPTR)


class TestSizeof:
    def test_pointer(self, layout, layout32):
        assert layout.sizeof(Pointer(INT)) == 16
        assert layout32.sizeof(Pointer(INT)) == 8
        assert layout.alignof(Pointer(INT)) == 16

    def test_array(self, layout):
        assert layout.sizeof(ArrayT(elem=INT, length=10)) == 40
        assert layout.alignof(ArrayT(elem=Pointer(VOID), length=2)) == 16

    def test_incomplete_array_rejected(self, layout):
        with pytest.raises(CTypeError):
            layout.sizeof(ArrayT(elem=INT, length=None))

    def test_void_rejected(self, layout):
        with pytest.raises(CTypeError):
            layout.sizeof(VOID)

    def test_function_rejected(self, layout):
        with pytest.raises(CTypeError):
            layout.sizeof(FuncT(ret=INT))


class TestStructLayout:
    def test_padding_before_capability(self, layout):
        s = StructT(tag="mix", fields=(
            Field("c", CHAR), Field("p", Pointer(INT)), Field("d", CHAR)))
        offsets = {f.name: f.offset for f in layout.struct_fields(s)}
        assert offsets == {"c": 0, "p": 16, "d": 32}
        assert layout.struct_size(s) == 48
        assert layout.alignof(s) == 16

    def test_plain_struct(self, layout):
        s = StructT(tag="pt", fields=(Field("x", INT), Field("y", INT)))
        assert layout.struct_size(s) == 8
        assert layout.offsetof(s, "y") == 4

    def test_union_layout(self, layout):
        u = UnionT(tag="pun", fields=(
            Field("p", Pointer(INT)), Field("i", INTPTR)))
        fields = layout.struct_fields(u)
        assert all(f.offset == 0 for f in fields)
        assert layout.struct_size(u) == 16

    def test_offsetof_unknown_member(self, layout):
        s = StructT(tag="pt", fields=(Field("x", INT),))
        with pytest.raises(CTypeError):
            layout.offsetof(s, "nope")

    def test_incomplete_struct_rejected(self, layout):
        s = StructT(tag="fwd", fields=None)
        with pytest.raises(CTypeError):
            layout.struct_size(s)

    def test_empty_struct_min_size_one(self, layout):
        s = StructT(tag="empty", fields=())
        assert layout.struct_size(s) == 1


class TestTypePredicates:
    def test_capability_types(self, layout):
        assert layout.is_capability_type(Pointer(VOID))
        assert layout.is_capability_type(INTPTR)
        assert layout.is_capability_type(UINTPTR)
        assert not layout.is_capability_type(PTRADDR)
        assert not layout.is_capability_type(LONG)

    def test_struct_identity_by_tag(self):
        a = StructT(tag="s", fields=(Field("x", INT),))
        b = StructT(tag="s", fields=None)
        assert a == b
        assert hash(a) == hash(b)
        u = UnionT(tag="s", fields=(Field("x", INT),))
        assert u != a

    def test_const_stripping(self):
        qualified = INT.qualified_const()
        assert qualified.const
        assert strip_const(qualified) == INT
        arr = ArrayT(elem=CHAR.qualified_const(), length=3)
        assert not strip_const(arr).elem.const

    def test_compatible(self):
        assert compatible(Pointer(VOID), Pointer(INT))
        assert compatible(Pointer(INT), Pointer(INT.qualified_const()))
        assert compatible(INT, LONG)
        assert not compatible(Pointer(INT), INT)

    def test_str_rendering(self):
        assert str(Pointer(INT)) == "int*"
        assert str(ArrayT(elem=INT, length=4)) == "int[4]"
        assert str(INTPTR) == "intptr_t"
        assert "struct" in str(StructT(tag="s"))
