"""Property tests over the memory object model.

Random operation sequences must preserve the model's structural
invariants: stored values read back exactly, capability tags exist only
where capabilities were legitimately stored, allocations stay disjoint,
and ghost state never resurrects authority.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.capability import MORELLO
from repro.ctypes import (
    IKind, Integer, INT, LLONG, LONG, Pointer, SHORT, UCHAR, UINT,
)
from repro.errors import UndefinedBehaviour
from repro.impls.registry import CERBERUS_MAP
from repro.memory import (
    IntegerValue, MemoryModel, Mode, MVInteger, MVPointer, MVUnspecified,
)
from repro.memory.allocation import AllocKind

SCALARS = [UCHAR, SHORT, INT, UINT, LONG, LLONG]


def fresh_model():
    return MemoryModel(MORELLO, Mode.ABSTRACT, CERBERUS_MAP)


@given(data=st.data())
@settings(max_examples=120, deadline=None)
def test_scalar_store_load_roundtrip(data):
    """Any in-range value stored at any scalar type reads back equal."""
    model = fresh_model()
    ctype = data.draw(st.sampled_from(SCALARS))
    kind: IKind = ctype.kind
    value = data.draw(st.integers(model.layout.int_min(kind),
                                  model.layout.int_max(kind)))
    p = model.allocate_object(ctype, AllocKind.STACK, "v")
    model.store(ctype, p, MVInteger(ctype, IntegerValue.of_int(value)))
    out = model.load(ctype, p)
    assert out.ival.value() == value


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_interleaved_allocations_stay_disjoint(data):
    """Random mixed allocations never overlap (object footprints)."""
    model = fresh_model()
    spans = []
    for _ in range(data.draw(st.integers(1, 25))):
        kind = data.draw(st.sampled_from([AllocKind.STACK, AllocKind.HEAP,
                                          AllocKind.GLOBAL]))
        size = data.draw(st.integers(1, 5000))
        if kind is AllocKind.HEAP:
            p = model.allocate_region(size)
        else:
            from repro.ctypes import ArrayT
            p = model.allocate_object(ArrayT(elem=UCHAR, length=size),
                                      kind, "o")
        alloc = model.allocation_of(p)
        spans.append((alloc.cap_base, alloc.cap_base + alloc.cap_size))
    spans.sort()
    for (a0, a1), (b0, _b1) in zip(spans, spans[1:]):
        assert a1 <= b0


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_tags_only_where_capabilities_stored(data):
    """After random int/pointer stores, a set capmeta tag implies the
    last write at that slot was a capability store."""
    model = fresh_model()
    from repro.ctypes import ArrayT
    n_slots = 8
    buf = model.allocate_object(
        ArrayT(elem=Pointer(INT), length=n_slots), AllocKind.STACK, "buf")
    target = model.allocate_object(INT, AllocKind.STACK, "x")
    last_was_cap = [None] * n_slots
    for _ in range(data.draw(st.integers(1, 30))):
        slot = data.draw(st.integers(0, n_slots - 1))
        addr = buf.address + slot * 16
        loc = buf.with_cap(buf.cap.with_address(addr))
        if data.draw(st.booleans()):
            model.store(Pointer(INT), loc, MVPointer(Pointer(INT), target))
            last_was_cap[slot] = True
        else:
            model.store(LONG, loc,
                        MVInteger(LONG, IntegerValue.of_int(
                            data.draw(st.integers(0, 2**63 - 1)))))
            last_was_cap[slot] = False
    for slot in range(n_slots):
        meta = model.state.capmeta_at(buf.address + slot * 16)
        # A *reliable* tag (set, ghost-clean) exists only where the last
        # write was a capability store; a data overwrite leaves the tag
        # bit unspecified rather than cleared (S3.5), so the raw bit may
        # linger -- without conveying authority.
        if meta.tag and meta.ghost.is_clean:
            assert last_was_cap[slot] is True
        if last_was_cap[slot] is True:
            assert meta.tag and meta.ghost.is_clean


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_pointer_roundtrip_through_any_scalar_writes(data):
    """A stored capability either reads back exactly, or -- after any
    non-capability write overlapped it -- is no longer usable (tag or
    ghost invalidated).  Authority never survives corruption."""
    model = fresh_model()
    x = model.allocate_object(INT, AllocKind.STACK, "x")
    slot = model.allocate_object(Pointer(INT), AllocKind.STACK, "slot")
    model.store(Pointer(INT), slot, MVPointer(Pointer(INT), x))
    corrupted = False
    for _ in range(data.draw(st.integers(0, 6))):
        off = data.draw(st.integers(0, 15))
        ctype = data.draw(st.sampled_from([UCHAR, SHORT, UINT]))
        size = model.layout.int_size(ctype.kind)
        if off + size > 16:
            continue
        loc = slot.with_cap(slot.cap.with_address(slot.address + off))
        model.store(ctype, loc,
                    MVInteger(ctype, IntegerValue.of_int(
                        data.draw(st.integers(0, 200)))))
        corrupted = True
    try:
        out = model.load(Pointer(INT), slot)
    except UndefinedBehaviour:
        assert corrupted    # partial representation: UB012 is fine
        return
    usable = (out.ptr.cap.tag and out.ptr.cap.ghost.is_clean)
    if corrupted:
        assert not usable
    else:
        assert usable
        assert out.ptr.cap.equal_exact(x.cap)


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_memcpy_equals_per_byte_content(data):
    """memcpy moves exactly the bytes a per-byte copy would move."""
    model = fresh_model()
    n = data.draw(st.integers(1, 64))
    src = model.allocate_region(n)
    dst = model.allocate_region(n)
    payload = data.draw(st.binary(min_size=n, max_size=n))
    for i, b in enumerate(payload):
        loc = src.with_cap(src.cap.with_address(src.address + i))
        model.store(UCHAR, loc, MVInteger(UCHAR, IntegerValue.of_int(b)))
    model.memcpy(dst, src, n)
    for i in range(n):
        loc = dst.with_cap(dst.cap.with_address(dst.address + i))
        out = model.load(UCHAR, loc)
        assert out.ival.value() == payload[i]


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_dead_allocations_never_resurrect(data):
    """Once killed, an allocation rejects access forever, regardless of
    intervening allocations (even at a reused address)."""
    model = fresh_model()
    victims = []
    mark = model.stack_mark()
    for _ in range(data.draw(st.integers(1, 8))):
        p = model.allocate_object(INT, AllocKind.STACK, "v")
        model.store(INT, p, MVInteger(INT, IntegerValue.of_int(1)))
        victims.append(p)
    for p in victims:
        model.kill_allocation(p.prov.ident)
    model.stack_release(mark)
    model.allocate_object(INT, AllocKind.STACK, "new")
    for p in victims:
        with pytest.raises(UndefinedBehaviour):
            model.load(INT, p)
