"""The cheri-run command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def prog(tmp_path):
    path = tmp_path / "t.c"
    path.write_text("""
#include <stdio.h>
int main(void) { printf("ok\\n"); return 0; }
""")
    return str(path)


@pytest.fixture
def ub_prog(tmp_path):
    path = tmp_path / "ub.c"
    path.write_text("""
int main(void) { int a[1]; return a[1]; }
""")
    return str(path)


def test_default_runs_cerberus(prog, capsys):
    status = main([prog])
    out = capsys.readouterr()
    assert status == 0
    assert "ok" in out.out
    assert "[cerberus] exit 0" in out.err


def test_named_implementation(prog, capsys):
    status = main([prog, "--impl", "gcc-morello-O0"])
    assert status == 0
    assert "[gcc-morello-O0]" in capsys.readouterr().err


def test_ub_gives_nonzero_status(ub_prog, capsys):
    status = main([ub_prog])
    assert status == 1
    assert "UB" in capsys.readouterr().err


def test_all_compares(ub_prog, capsys):
    status = main([ub_prog, "--all"])
    out = capsys.readouterr().out
    assert status == 0
    assert "== cerberus:" in out
    assert "== gcc-morello-O3:" in out


def test_unknown_impl(prog):
    with pytest.raises(KeyError):
        main([prog, "--impl", "icc"])


def test_report_table1(capsys):
    assert main(["--report", "table1"]) == 0
    out = capsys.readouterr().out
    assert "94 distinct tests" in out
    assert "!! paper says" not in out


def test_list_implementations(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "cerberus" in out and "gcc-morello-O3" in out


def test_file_required_without_report(capsys):
    with pytest.raises(SystemExit):
        main([])
