"""The cheri-run command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _restore_compile_cache_switch():
    # CLI flags toggle the process-wide cache switch; keep it from
    # leaking into other tests.
    from repro.perf import cache_enabled, set_cache_enabled
    enabled = cache_enabled()
    yield
    set_cache_enabled(enabled)


@pytest.fixture
def prog(tmp_path):
    path = tmp_path / "t.c"
    path.write_text("""
#include <stdio.h>
int main(void) { printf("ok\\n"); return 0; }
""")
    return str(path)


@pytest.fixture
def ub_prog(tmp_path):
    path = tmp_path / "ub.c"
    path.write_text("""
int main(void) { int a[1]; return a[1]; }
""")
    return str(path)


def test_default_runs_cerberus(prog, capsys):
    status = main([prog])
    out = capsys.readouterr()
    assert status == 0
    assert "ok" in out.out
    assert "[cerberus] exit 0" in out.err


def test_named_implementation(prog, capsys):
    status = main([prog, "--impl", "gcc-morello-O0"])
    assert status == 0
    assert "[gcc-morello-O0]" in capsys.readouterr().err


def test_ub_gives_nonzero_status(ub_prog, capsys):
    status = main([ub_prog])
    assert status == 1
    assert "UB" in capsys.readouterr().err


def test_all_compares(ub_prog, capsys):
    status = main([ub_prog, "--all"])
    out = capsys.readouterr().out
    assert status == 0
    assert "== cerberus:" in out
    assert "== gcc-morello-O3:" in out


def test_unknown_impl(prog):
    with pytest.raises(KeyError):
        main([prog, "--impl", "icc"])


def test_report_table1(capsys):
    assert main(["--report", "table1"]) == 0
    out = capsys.readouterr().out
    assert "94 distinct tests" in out
    assert "!! paper says" not in out


def test_list_implementations(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "cerberus" in out and "gcc-morello-O3" in out


def test_list_is_sorted_and_shows_model_options(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    names = [line.split()[0] for line in out.splitlines()
             if line and not line.startswith(" ")]
    assert names == sorted(names)
    # Every implementation carries a memory-model options line.
    option_lines = [line for line in out.splitlines()
                    if line.startswith(" ")]
    assert len(option_lines) == len(names)
    assert all("mode=" in line and "intptr=" in line
               and "subobject-bounds=" in line for line in option_lines)
    assert any("mode=hardware" in line for line in option_lines)
    assert any("oob=arch_representable" in line for line in option_lines)


def test_run_with_metrics(prog, capsys):
    assert main([prog, "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "interp steps" in out
    assert "events.alloc.create" in out


def test_trace_human_readable(prog, capsys):
    assert main(["trace", prog]) == 0
    out = capsys.readouterr().out
    assert "alloc.create" in out
    assert "run.outcome" in out


def test_trace_jsonl_and_explain(ub_prog, tmp_path, capsys):
    out_path = tmp_path / "trace.jsonl"
    status = main(["trace", ub_prog, "--jsonl", str(out_path),
                   "--explain"])
    captured = capsys.readouterr()
    assert status == 1
    assert out_path.exists()
    import json
    events = [json.loads(line)
              for line in out_path.read_text().splitlines()]
    assert events[0]["seq"] == 1
    assert any(e["kind"] == "check.ub" for e in events)
    assert "== explain ==" in captured.out
    assert "UB_CHERI_BoundsViolation" in captured.out


def test_trace_ring_bounds_events(prog, tmp_path, capsys):
    out_path = tmp_path / "ring.jsonl"
    assert main(["trace", prog, "--ring", "5",
                 "--jsonl", str(out_path)]) == 0
    capsys.readouterr()
    lines = out_path.read_text().splitlines()
    assert len(lines) == 5


def test_file_required_without_report(capsys):
    with pytest.raises(SystemExit):
        main([])


def _first_case_name():
    from repro.testsuite.suite import all_cases
    return all_cases()[0].name


def test_suite_subcommand_single_case(capsys):
    name = _first_case_name()
    status = main(["suite", "--impl", "cerberus", "--case", name])
    out = capsys.readouterr().out
    assert status == 0
    assert "cerberus" in out
    assert "pass   1" in out


def test_suite_subcommand_parallel_and_flags(capsys):
    name = _first_case_name()
    status = main(["suite", "--case", name, "--jobs", "2",
                   "--no-compile-cache", "--metrics"])
    out = capsys.readouterr().out
    assert status == 0
    assert "interp steps" in out


def test_suite_unknown_case_errors():
    with pytest.raises(SystemExit):
        main(["suite", "--case", "no-such-test"])


def test_compare_subcommand_single_case(capsys):
    name = _first_case_name()
    status = main(["compare", "--case", name, "--jobs", "2"])
    out = capsys.readouterr().out
    assert status == 0
    assert "cerberus" in out and "gcc-morello-O3" in out


def test_run_subcommand_alias(prog, capsys):
    status = main(["run", prog, "--no-compile-cache"])
    assert status == 0
    assert "[cerberus] exit 0" in capsys.readouterr().err


def test_fuzz_accepts_engine_flags(capsys):
    status = main(["fuzz", "--seed", "3", "--iterations", "2",
                   "--jobs", "2", "--quiet"])
    out = capsys.readouterr().out
    assert status == 0
    assert "Differential fuzz: seed 3, 2 programs" in out
