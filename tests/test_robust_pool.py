"""Hardened-pool fault injection (ISSUE 4, docs/ROBUSTNESS.md).

The properties under test:

* a worker killed mid-task is retried on a fresh worker and the final
  report is **byte-identical** to a fault-free serial run;
* a task that fails twice lands in the report as *quarantined* -- one
  bad case never aborts the run or poisons its pool-mates;
* a hung worker is detected via the task timeout and torn down within
  bounded wall-clock time.

All worker functions are top-level so they pickle into workers.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import OutcomeKind
from repro.fuzz.driver import run_fuzz
from repro.obs import EventBus
from repro.perf.pool import TaskFailure, parallel_map
from repro.robust import FaultPlan
from repro.testsuite.compare import run_suite
from repro.testsuite.suite import all_cases


def _double(x):
    return 2 * x


def _slow(x):
    time.sleep(0.05)
    return x


class TestParallelMapFaults:
    def test_kill_once_is_retried_to_identical_results(self, tmp_path):
        plan = FaultPlan(kill_task_index=3,
                         once_token=str(tmp_path / "latch"))
        results = parallel_map(_double, range(10), jobs=2,
                               fault_plan=plan)
        assert results == [_double(i) for i in range(10)]

    def test_persistent_kill_quarantines_only_that_task(self):
        results = parallel_map(_double, range(10), jobs=2,
                               fault_plan=FaultPlan(kill_task_index=3))
        failure = results[3]
        assert isinstance(failure, TaskFailure)
        assert failure.index == 3
        assert failure.attempts == 2
        for i in range(10):
            if i != 3:
                assert results[i] == _double(i)

    def test_hang_once_is_retried(self, tmp_path):
        plan = FaultPlan(hang_task_index=2,
                         once_token=str(tmp_path / "latch"))
        started = time.monotonic()
        results = parallel_map(_double, range(6), jobs=2,
                               fault_plan=plan, task_timeout=0.5)
        assert results == [_double(i) for i in range(6)]
        assert time.monotonic() - started < 60.0

    def test_persistent_hang_quarantined_in_bounded_time(self):
        started = time.monotonic()
        results = parallel_map(_double, range(6), jobs=2,
                               fault_plan=FaultPlan(hang_task_index=2),
                               task_timeout=0.5)
        assert isinstance(results[2], TaskFailure)
        assert "deadline" in results[2].error
        assert time.monotonic() - started < 60.0

    def test_retry_and_quarantine_emit_events(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        parallel_map(_double, range(8), jobs=2,
                     fault_plan=FaultPlan(kill_task_index=1), bus=bus)
        kinds = [e.kind for e in seen]
        assert "robust.retry" in kinds
        assert "robust.quarantine" in kinds

    def test_no_fault_plan_on_serial_path(self):
        # jobs=1 never forks, so a kill plan must be inert.
        results = parallel_map(_double, range(4), jobs=1,
                               fault_plan=FaultPlan(kill_task_index=0))
        assert results == [_double(i) for i in range(4)]

    def test_fn_exceptions_stay_loud(self):
        with pytest.raises(ZeroDivisionError):
            parallel_map(_reciprocal, [1, 0, 2], jobs=1)


def _reciprocal(x):
    return 1 / x


def _report_bytes(report) -> str:
    """The full observable content of a suite report."""
    lines = [report.summary_line()]
    for result in report.results:
        lines.append(f"{result.case.name} {result.outcome.describe()} "
                     f"{result.outcome.stdout!r} {result.passed}")
    return "\n".join(lines)


class TestSuiteUnderFaults:
    CASES = tuple(all_cases()[:6])

    def test_kill_once_report_identical_to_serial(self, tmp_path):
        from repro.impls import CERBERUS
        serial = run_suite(CERBERUS, self.CASES, jobs=1)
        plan = FaultPlan(kill_task_index=2,
                         once_token=str(tmp_path / "latch"))
        faulted = run_suite(CERBERUS, self.CASES, jobs=2,
                            fault_plan=plan)
        assert _report_bytes(faulted) == _report_bytes(serial)
        assert faulted.quarantined == 0

    def test_persistent_kill_is_quarantined_not_a_crash(self):
        from repro.impls import CERBERUS
        report = run_suite(CERBERUS, self.CASES, jobs=2,
                           fault_plan=FaultPlan(kill_task_index=2))
        assert len(report.results) == len(self.CASES)
        assert report.quarantined == 1
        victim = report.results[2]
        assert victim.quarantined
        assert victim.outcome.kind is OutcomeKind.RESOURCE
        assert victim.outcome.limit == "worker"
        assert victim.passed is None  # no verdict, not a failure
        assert "quarantined   1" in report.summary_line()
        # Every other case still carries its real verdict.
        others = [r for i, r in enumerate(report.results) if i != 2]
        assert all(not r.quarantined for r in others)


class TestFuzzUnderFaults:
    def _signature(self, report):
        return (report.iterations, report.reference_counts,
                [g.describe() for g in report.sorted_groups()],
                sorted(g.minimized_source or "" for g in report.groups))

    def test_kill_once_report_identical_to_serial(self, tmp_path):
        serial = run_fuzz(seed=0, iterations=6, jobs=1, shrink_budget=5)
        plan = FaultPlan(kill_task_index=3,
                         once_token=str(tmp_path / "latch"))
        faulted = run_fuzz(seed=0, iterations=6, jobs=2, shrink_budget=5,
                           fault_plan=plan)
        assert self._signature(faulted) == self._signature(serial)
        assert faulted.quarantined == []

    def test_persistent_kill_completes_with_quarantine(self):
        report = run_fuzz(seed=0, iterations=6, jobs=2, shrink_budget=5,
                          fault_plan=FaultPlan(kill_task_index=3))
        assert report.iterations == 6
        assert report.quarantined == [3]
        assert report.reference_counts.get("quarantined") == 1
