"""Hardened-pool fault injection (ISSUE 4, docs/ROBUSTNESS.md) and the
persistent warm pool (ISSUE 8).

The properties under test:

* a worker killed mid-task is retried on a fresh worker and the final
  report is **byte-identical** to a fault-free serial run;
* a task that fails twice lands in the report as *quarantined* -- one
  bad case never aborts the run or poisons its pool-mates;
* a hung worker is detected via the task timeout and torn down within
  bounded wall-clock time;
* the persistent pool is reused across ``parallel_map`` calls (warm
  workers), but never by fault-plan runs, and is rebuilt after faults;
* when no isolated retry worker can be built, a known-bad item is
  quarantined -- never re-run inline in the parent process;
* chunk sizing follows the measured per-item cost of previous calls.

All worker functions are top-level so they pickle into workers.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import OutcomeKind
from repro.fuzz.driver import run_fuzz
from repro.obs import EventBus
from repro.perf.pool import TaskFailure, parallel_map
from repro.robust import FaultPlan
from repro.testsuite.compare import run_suite
from repro.testsuite.suite import all_cases


def _double(x):
    return 2 * x


def _slow(x):
    time.sleep(0.05)
    return x


class TestParallelMapFaults:
    def test_kill_once_is_retried_to_identical_results(self, tmp_path):
        plan = FaultPlan(kill_task_index=3,
                         once_token=str(tmp_path / "latch"))
        results = parallel_map(_double, range(10), jobs=2,
                               fault_plan=plan)
        assert results == [_double(i) for i in range(10)]

    def test_persistent_kill_quarantines_only_that_task(self):
        results = parallel_map(_double, range(10), jobs=2,
                               fault_plan=FaultPlan(kill_task_index=3))
        failure = results[3]
        assert isinstance(failure, TaskFailure)
        assert failure.index == 3
        assert failure.attempts == 2
        for i in range(10):
            if i != 3:
                assert results[i] == _double(i)

    def test_hang_once_is_retried(self, tmp_path):
        plan = FaultPlan(hang_task_index=2,
                         once_token=str(tmp_path / "latch"))
        started = time.monotonic()
        results = parallel_map(_double, range(6), jobs=2,
                               fault_plan=plan, task_timeout=0.5)
        assert results == [_double(i) for i in range(6)]
        assert time.monotonic() - started < 60.0

    def test_persistent_hang_quarantined_in_bounded_time(self):
        started = time.monotonic()
        results = parallel_map(_double, range(6), jobs=2,
                               fault_plan=FaultPlan(hang_task_index=2),
                               task_timeout=0.5)
        assert isinstance(results[2], TaskFailure)
        assert "deadline" in results[2].error
        assert time.monotonic() - started < 60.0

    def test_retry_and_quarantine_emit_events(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        parallel_map(_double, range(8), jobs=2,
                     fault_plan=FaultPlan(kill_task_index=1), bus=bus)
        kinds = [e.kind for e in seen]
        assert "robust.retry" in kinds
        assert "robust.quarantine" in kinds

    def test_no_fault_plan_on_serial_path(self):
        # jobs=1 never forks, so a kill plan must be inert.
        results = parallel_map(_double, range(4), jobs=1,
                               fault_plan=FaultPlan(kill_task_index=0))
        assert results == [_double(i) for i in range(4)]

    def test_fn_exceptions_stay_loud(self):
        with pytest.raises(ZeroDivisionError):
            parallel_map(_reciprocal, [1, 0, 2], jobs=1)


def _reciprocal(x):
    return 1 / x


def _costed(x):
    return x


def _uncosted(x):
    return x


class TestWarmPool:
    def test_persistent_pool_reused_across_calls(self):
        from repro.perf import pool as pool_mod
        pool_mod.shutdown_workers()
        assert parallel_map(_double, range(8), jobs=2, chunksize=2) \
            == [_double(i) for i in range(8)]
        first = pool_mod._POOL._executor
        assert first is not None
        assert parallel_map(_double, range(8), jobs=2, chunksize=2) \
            == [_double(i) for i in range(8)]
        assert pool_mod._POOL._executor is first
        pool_mod.shutdown_workers()
        assert pool_mod._POOL._executor is None

    def test_fault_plan_runs_never_touch_the_persistent_pool(self):
        from repro.perf import pool as pool_mod
        pool_mod.shutdown_workers()
        parallel_map(_double, range(8), jobs=2, chunksize=2,
                     fault_plan=FaultPlan(kill_task_index=1))
        assert pool_mod._POOL._executor is None

    def test_pool_rebuilt_after_worker_death(self, tmp_path):
        # A fault-free call builds the pool; a fault run (throwaway
        # executor) cannot break it; the next fault-free call reuses it.
        from repro.perf import pool as pool_mod
        pool_mod.shutdown_workers()
        parallel_map(_double, range(8), jobs=2, chunksize=2)
        warm = pool_mod._POOL._executor
        plan = FaultPlan(kill_task_index=3,
                         once_token=str(tmp_path / "latch"))
        parallel_map(_double, range(8), jobs=2, chunksize=2,
                     fault_plan=plan)
        assert pool_mod._POOL._executor is warm
        pool_mod.shutdown_workers()

    def test_isolated_fallback_quarantines_instead_of_inline(
            self, monkeypatch):
        # If no isolated single-worker executor can be built for the
        # retry stage, the known-bad item must come back as a
        # TaskFailure -- running it inline in the parent would let a
        # crash-looping item kill the whole run.
        from repro.perf import pool as pool_mod
        real = pool_mod.ProcessPoolExecutor

        def no_singles(*args, **kwargs):
            if kwargs.get("max_workers") == 1:
                raise OSError("isolated workers unavailable")
            return real(*args, **kwargs)

        monkeypatch.setattr(pool_mod, "ProcessPoolExecutor", no_singles)
        results = parallel_map(_double, range(10), jobs=2, chunksize=2,
                               fault_plan=FaultPlan(kill_task_index=3))
        # The killed item must be quarantined, not a value: an inline
        # parent-process rerun (which never installs the fault plan)
        # would have produced _double(3) here.
        failure = results[3]
        assert isinstance(failure, TaskFailure)
        assert "no isolated worker" in failure.error
        # Pool-mates either finished before the crash poisoned the
        # executor or were quarantined too -- never half-computed.
        for i in range(10):
            if i != 3 and not isinstance(results[i], TaskFailure):
                assert results[i] == _double(i)


class TestChunkSizing:
    def test_measured_cost_drives_group_size(self):
        from repro.perf.pool import _auto_chunksize, _record_cost
        _record_cost(_costed, 10, 0.5)  # 50ms/item measured
        # 0.25s target / 0.05s per item = 5, under the load-balance cap.
        assert _auto_chunksize(_costed, 100, 2) == 5

    def test_load_balance_caps_cheap_items(self):
        from repro.perf.pool import _auto_chunksize, _record_cost
        _record_cost(_costed, 1000, 0.001)  # 1us/item: huge raw groups
        # Every worker still gets >= 2 groups.
        assert _auto_chunksize(_costed, 100, 2) <= 25

    def test_unmeasured_fn_uses_static_split(self):
        from repro.perf.pool import _auto_chunksize
        assert _auto_chunksize(_uncosted, 80, 2) == 10  # 80 // (2*4)

    def test_cost_estimate_updates_as_ewma(self):
        from repro.perf.pool import (_COST_ESTIMATES, _fn_cost_key,
                                     _record_cost)
        key = _fn_cost_key(_uncosted)
        _COST_ESTIMATES.pop(key, None)
        _record_cost(_uncosted, 10, 1.0)   # 0.1 s/item
        _record_cost(_uncosted, 10, 3.0)   # 0.3 s/item
        assert abs(_COST_ESTIMATES[key] - 0.2) < 1e-9
        _COST_ESTIMATES.pop(key, None)


class TestIncrementalDeadlines:
    def test_hang_quarantines_only_the_hung_item(self):
        # With single-item groups, the deadline trips on the hung
        # group; pool-mates that were torn down with it are retried on
        # isolated workers and still produce their real values.
        results = parallel_map(_double, range(6), jobs=2, chunksize=1,
                               fault_plan=FaultPlan(hang_task_index=0),
                               task_timeout=0.5)
        assert isinstance(results[0], TaskFailure)
        assert "deadline" in results[0].error
        for i in range(1, 6):
            assert results[i] == _double(i)

    def test_detection_is_incremental_not_collective(self):
        # 12 single-item groups at 0.5s each: the pre-PR-8 collective
        # budget would allow ~6s before even checking; the incremental
        # tracker trips within about one group budget plus retry
        # overhead for the single hung item.
        started = time.monotonic()
        results = parallel_map(_double, range(12), jobs=2, chunksize=1,
                               fault_plan=FaultPlan(hang_task_index=1),
                               task_timeout=0.5)
        elapsed = time.monotonic() - started
        assert isinstance(results[1], TaskFailure)
        assert elapsed < 30.0


def _report_bytes(report) -> str:
    """The full observable content of a suite report."""
    lines = [report.summary_line()]
    for result in report.results:
        lines.append(f"{result.case.name} {result.outcome.describe()} "
                     f"{result.outcome.stdout!r} {result.passed}")
    return "\n".join(lines)


class TestSuiteUnderFaults:
    CASES = tuple(all_cases()[:6])

    def test_kill_once_report_identical_to_serial(self, tmp_path):
        from repro.impls import CERBERUS
        serial = run_suite(CERBERUS, self.CASES, jobs=1)
        plan = FaultPlan(kill_task_index=2,
                         once_token=str(tmp_path / "latch"))
        faulted = run_suite(CERBERUS, self.CASES, jobs=2,
                            fault_plan=plan)
        assert _report_bytes(faulted) == _report_bytes(serial)
        assert faulted.quarantined == 0

    def test_persistent_kill_is_quarantined_not_a_crash(self):
        from repro.impls import CERBERUS
        report = run_suite(CERBERUS, self.CASES, jobs=2,
                           fault_plan=FaultPlan(kill_task_index=2))
        assert len(report.results) == len(self.CASES)
        assert report.quarantined == 1
        victim = report.results[2]
        assert victim.quarantined
        assert victim.outcome.kind is OutcomeKind.RESOURCE
        assert victim.outcome.limit == "worker"
        assert victim.passed is None  # no verdict, not a failure
        assert "quarantined   1" in report.summary_line()
        # Every other case still carries its real verdict.
        others = [r for i, r in enumerate(report.results) if i != 2]
        assert all(not r.quarantined for r in others)


class TestFuzzUnderFaults:
    def _signature(self, report):
        return (report.iterations, report.reference_counts,
                [g.describe() for g in report.sorted_groups()],
                sorted(g.minimized_source or "" for g in report.groups))

    def test_kill_once_report_identical_to_serial(self, tmp_path):
        serial = run_fuzz(seed=0, iterations=6, jobs=1, shrink_budget=5)
        plan = FaultPlan(kill_task_index=3,
                         once_token=str(tmp_path / "latch"))
        faulted = run_fuzz(seed=0, iterations=6, jobs=2, shrink_budget=5,
                           fault_plan=plan)
        assert self._signature(faulted) == self._signature(serial)
        assert faulted.quarantined == []

    def test_persistent_kill_completes_with_quarantine(self):
        report = run_fuzz(seed=0, iterations=6, jobs=2, shrink_budget=5,
                          fault_plan=FaultPlan(kill_task_index=3))
        assert report.iterations == 6
        assert report.quarantined == [3]
        assert report.reference_counts.get("quarantined") == 1
