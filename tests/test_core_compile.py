"""The direct-threaded compiled backend (``repro.core.compile``).

What justifies making closure dispatch the process default is pinned
here, alongside the three-way differential harness and the engine
benchmark's identity checks:

* **Observable identity** -- outcomes, step counts, budget cut-offs,
  and (traced) event streams match the Core evaluator's exactly; the
  superinstructions and the constant folder only change *how* steps
  are spent, never how many or what they observe.
* **Fusion boundaries** -- a pair whose second op is a jump target is
  never fused and a folded region never spans a control merge, over
  every program in the compliance suite, not just hand-picked cases.
* **Deterministic compilation** -- the same Core function compiles to
  the same slot plan and slot ids every time, so ``--dump-core``
  listings and differential failures are reproducible.
* **Folding never erases semantics** -- division by zero, signed
  overflow, capability-carrying arithmetic, and unspecified reads all
  refuse to fold and reach the same UB/trap outcome (with the same
  explainer chain) as the unoptimised evaluators; what *does* fold is
  pinned by a golden ``--dump-core`` listing.
* **The run memo is invisible** -- pure repeat runs are served from
  the memo, while traced, metered, and fault-injected runs always
  execute for real.
"""

from __future__ import annotations

import pathlib
import pickle

from repro.core import elaborate_program
from repro.core.compile import (
    CompiledEvaluator, CompiledProgram, compile_core, render_compiled,
)
from repro.core.coreeval import CoreEvaluator
from repro.core.coreir import Jump, JumpIfFalse, JumpIfTrue
from repro.errors import OutcomeKind
from repro.impls import CERBERUS, by_name
from repro.obs import EventBus, TraceRecorder
from repro.perf import compile_program, compile_threaded
from repro.robust import Budget
from repro.testsuite.suite import all_cases

GOLDEN = pathlib.Path(__file__).parent / "golden"

LOOP_SUM = """
int main(void) {
  int total = 0;
  int i;
  for (i = 0; i < 40; i = i + 1) { total = total + i; }
  return total > 255 ? 255 : total;
}
"""

FOLDS_AND_NON_FOLDS = """
int main(void) {
  int folded = 2 + 3 * 4;
  int chain = (10 - 4) / 3;
  int a[2] = {1, 2};
  int runtime = a[0] + a[1];
  return folded + chain + runtime;
}
"""


def fresh_compiled(source: str, impl=CERBERUS) -> CompiledProgram:
    """A private CompiledProgram (cold snapshots/memo) with folds on."""
    return compile_core(
        elaborate_program(compile_program(impl, source, use_cache=False)),
        impl)


def evaluator_pair(source: str, impl=CERBERUS):
    compiled = fresh_compiled(source, impl)
    return (CoreEvaluator(compiled.core, impl.fresh_model()),
            CompiledEvaluator(compiled, impl.fresh_model()))


class TestObservableIdentity:
    def test_outcome_and_step_count_match_core(self):
        core_ev, compiled_ev = evaluator_pair(LOOP_SUM)
        assert core_ev.run() == compiled_ev.run()
        assert core_ev.steps == compiled_ev.steps
        assert core_ev.steps > 0

    def test_step_counts_match_over_the_suite(self):
        # The charge-identity property, over real programs: fused
        # pairs and folded regions must spend exactly the Core loop's
        # steps on every suite case the frontend accepts.
        checked = 0
        for case in all_cases()[:25]:
            try:
                compiled = fresh_compiled(case.source)
            except Exception:
                continue  # frontend-rejected cases have no run stage
            core_ev = CoreEvaluator(compiled.core, CERBERUS.fresh_model())
            compiled_ev = CompiledEvaluator(compiled,
                                            CERBERUS.fresh_model())
            assert core_ev.run() == compiled_ev.run(), case.name
            assert core_ev.steps == compiled_ev.steps, case.name
            checked += 1
        assert checked >= 10

    def test_budget_cutoffs_identical(self):
        # A fold batch-charges only when no budget can observe it; at
        # every cut-off point the resource_exhausted outcome must be
        # byte-identical (same step number in the detail).
        for max_steps in (1, 7, 50, 137):
            budget = Budget(max_steps=max_steps)
            core = CERBERUS.run(LOOP_SUM, evaluator="core",
                                use_cache=False, budget=budget)
            compiled = CERBERUS.run(LOOP_SUM, evaluator="compiled",
                                    use_cache=False, budget=budget)
            assert core == compiled, max_steps

    def test_traced_event_streams_identical(self):
        # Traced runs delegate to the Core dispatch loop: every event
        # must carry the same core_op id and step stamp.
        streams = []
        for evaluator in ("core", "compiled"):
            bus = EventBus()
            recorder = TraceRecorder().attach(bus)
            outcome = CERBERUS.run(FOLDS_AND_NON_FOLDS, bus=bus,
                                   use_cache=False, evaluator=evaluator)
            assert outcome.kind is OutcomeKind.EXIT
            streams.append(recorder.dicts())
        assert streams[0] == streams[1]
        assert streams[0]  # the program does emit events


class TestFusionBoundaries:
    def branch_targets(self, func) -> set[int]:
        targets = set()
        for op in func.ops:
            if type(op) in (Jump, JumpIfFalse, JumpIfTrue):
                targets.add(op.target)
        return targets

    def test_no_fused_pair_or_fold_spans_a_jump_target(self):
        # A branch into the middle of a superinstruction would skip
        # its first half; the planner must break the pair instead.
        # Checked across the whole compliance suite for depth.
        funcs_with_pairs = 0
        for case in all_cases():
            try:
                compiled = fresh_compiled(case.source)
            except Exception:
                continue
            for cf in list(compiled.functions.values()) + \
                    [compiled.globals_init]:
                targets = self.branch_targets(cf.core)
                for entry in cf.plan:
                    if entry[0] == "fused":
                        assert entry[1] + 1 not in targets, \
                            (case.name, cf.name, entry)
                        funcs_with_pairs += 1
                    elif entry[0] == "fold":
                        _, start, end = entry[0], entry[1], entry[2]
                        assert not (targets &
                                    set(range(start + 1, end + 1))), \
                            (case.name, cf.name, entry)
        assert funcs_with_pairs > 0

    def test_loop_back_edge_blocks_fusion(self):
        # The `i < 40` comparison at a loop head is a jump target for
        # the back edge: a cmp+branch pair there must stay split while
        # the loop still runs correctly.
        compiled = fresh_compiled(LOOP_SUM)
        main = compiled.functions["main"]
        targets = self.branch_targets(main.core)
        for entry in main.plan:
            if entry[0] == "fused":
                assert entry[1] + 1 not in targets
        outcome = CompiledEvaluator(compiled, CERBERUS.fresh_model()).run()
        assert outcome.exit_status == 255  # sum(range(40)) clamps


class TestDeterministicCompilation:
    def test_same_source_compiles_to_identical_plans(self):
        first = fresh_compiled(FOLDS_AND_NON_FOLDS)
        second = fresh_compiled(FOLDS_AND_NON_FOLDS)
        assert set(first.functions) == set(second.functions)
        for name in first.functions:
            assert first.functions[name].plan == \
                second.functions[name].plan
            assert first.functions[name].slot_ids == \
                second.functions[name].slot_ids
        assert first.globals_init.plan == second.globals_init.plan

    def test_slot_ids_name_function_index_and_kind(self):
        compiled = fresh_compiled(FOLDS_AND_NON_FOLDS)
        main = compiled.functions["main"]
        assert all(sid.startswith("main:") for sid in main.slot_ids)
        kinds = {sid.split(":")[2] for sid in main.slot_ids}
        assert kinds <= {"op", "fused", "fold"}

    def test_render_compiled_is_deterministic(self):
        assert render_compiled(fresh_compiled(FOLDS_AND_NON_FOLDS)) == \
            render_compiled(fresh_compiled(FOLDS_AND_NON_FOLDS))


class TestConstantFolding:
    @staticmethod
    def folded_indices(cf) -> set[int]:
        covered: set[int] = set()
        for entry in cf.plan:
            if entry[0] == "fold":
                covered.update(range(entry[1], entry[2] + 1))
        return covered

    @classmethod
    def binop_stays_unfolded(cls, compiled, op_name: str) -> bool:
        """True iff every ``op_name`` binop in main survives folding.
        (Charge+literal prefixes may still fold -- that is harmless --
        but the operation that would trap/UB must execute.)"""
        from repro.core.coreir import BinOp
        main = compiled.functions["main"]
        covered = cls.folded_indices(main)
        sites = [i for i, op in enumerate(main.core.ops)
                 if type(op) is BinOp and op.op == op_name]
        assert sites, f"no {op_name!r} binop elaborated"
        return all(i not in covered for i in sites)

    def assert_same_outcome(self, source: str, kind: OutcomeKind):
        core = CERBERUS.run(source, evaluator="core", use_cache=False)
        compiled = CERBERUS.run(source, evaluator="compiled",
                                use_cache=False)
        assert core == compiled
        assert compiled.kind is kind
        return compiled

    def test_pure_arithmetic_folds(self):
        compiled = fresh_compiled(FOLDS_AND_NON_FOLDS)
        folds = [entry for entry in
                 compiled.functions["main"].plan if entry[0] == "fold"]
        assert folds, "2 + 3 * 4 should fold"
        outcome = CompiledEvaluator(compiled,
                                    CERBERUS.fresh_model()).run()
        assert outcome.exit_status == 14 + 2 + 3

    def test_division_by_zero_never_folds(self):
        source = "int main(void) { return 1 / 0; }"
        compiled = fresh_compiled(source)
        assert self.binop_stays_unfolded(compiled, "/")
        outcome = self.assert_same_outcome(source, OutcomeKind.UNDEFINED)
        assert outcome.ub is not None

    def test_signed_overflow_never_folds(self):
        source = """
#include <limits.h>
int main(void) { int x = INT_MAX + 1; return x != 0; }
"""
        compiled = fresh_compiled(source)
        assert self.binop_stays_unfolded(compiled, "+")
        core = CERBERUS.run(source, evaluator="core", use_cache=False)
        assert core == CERBERUS.run(source, evaluator="compiled",
                                    use_cache=False)

    def test_oob_capability_arithmetic_never_folds(self):
        # Pointer/capability arithmetic is outside the fold whitelist
        # entirely, so the OOB dereference trap (hardware mode) and UB
        # (abstract mode) fire exactly as under the Core evaluator.
        source = "int main(void) { int a[2]; int *p = a + 2;" \
                 " return *p; }"
        for impl in (CERBERUS, by_name("clang-morello-O0")):
            compiled = compile_core(elaborate_program(
                compile_program(impl, source, use_cache=False)), impl)
            assert self.binop_stays_unfolded(compiled, "+")
            core = impl.run(source, evaluator="core", use_cache=False)
            threaded = impl.run(source, evaluator="compiled",
                                use_cache=False)
            assert core == threaded, impl.name
            assert threaded.kind in (OutcomeKind.UNDEFINED,
                                     OutcomeKind.TRAP)

    def test_unspecified_read_never_folds(self):
        source = "int main(void) { int x; return x & 0; }"
        compiled = fresh_compiled(source)
        assert self.binop_stays_unfolded(compiled, "&")
        core = CERBERUS.run(source, evaluator="core", use_cache=False)
        assert core == CERBERUS.run(source, evaluator="compiled",
                                    use_cache=False)

    def test_ub_explainer_chain_matches_core(self):
        # The explainer consumes the traced event stream; traced runs
        # delegate, so the explaining chain is the Core evaluator's.
        from repro.obs import explain
        chains = []
        for evaluator in ("core", "compiled"):
            bus = EventBus()
            recorder = TraceRecorder().attach(bus)
            outcome = CERBERUS.run("int main(void) { return 1 / 0; }",
                                   bus=bus, use_cache=False,
                                   evaluator=evaluator)
            assert outcome.kind is OutcomeKind.UNDEFINED
            chains.append(explain(recorder.dicts(),
                                  outcome=outcome.describe()))
        assert chains[0] == chains[1]

    def test_golden_folds_listing(self):
        """The ``--dump-core`` listing under the compiled evaluator
        (refresh deliberately: ``python - <<'EOF'`` rebuilding via
        :func:`render_compiled` and writing
        ``tests/golden/compiled_folds.txt``)."""
        listing = render_compiled(fresh_compiled(FOLDS_AND_NON_FOLDS))
        expected = (GOLDEN / "compiled_folds.txt").read_text()
        assert listing == expected

    def test_dump_core_prints_compiled_section(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "folds.c"
        path.write_text(FOLDS_AND_NON_FOLDS, encoding="utf-8")
        status = main(["run", str(path), "--dump-core"])
        printed = capsys.readouterr().out
        assert status == 0
        assert "compiled:" in printed
        assert "fold" in printed


class TestRunMemo:
    def test_repeat_pure_runs_are_served_from_the_memo(self):
        compiled = fresh_compiled(LOOP_SUM)
        first = CompiledEvaluator(compiled, CERBERUS.fresh_model()).run()
        assert len(compiled.outcomes) == 1
        second = CompiledEvaluator(compiled, CERBERUS.fresh_model()).run()
        assert second is first  # the frozen Outcome itself is shared
        assert len(compiled.outcomes) == 1

    def test_distinct_run_configs_memoise_separately(self):
        source = LOOP_SUM
        compiled_ref = fresh_compiled(source, CERBERUS)
        ref = CompiledEvaluator(compiled_ref, CERBERUS.fresh_model()).run()
        hw = CompiledEvaluator(
            compiled_ref, by_name("clang-morello-O0").fresh_model()).run()
        assert len(compiled_ref.outcomes) == 2
        assert ref == hw  # this program is mode-independent

    def test_metered_runs_bypass_the_memo(self):
        compiled = fresh_compiled(LOOP_SUM)
        CompiledEvaluator(compiled, CERBERUS.fresh_model()).run()
        assert len(compiled.outcomes) == 1
        # A governed run must execute for real (its budget could cut
        # it off) and must not overwrite the pure entry.
        from repro.robust.budget import BudgetMeter
        meter = BudgetMeter(Budget(max_steps=7))
        model = CERBERUS.fresh_model(meter=meter)
        governed = CompiledEvaluator(compiled, model).run()
        assert governed.kind is OutcomeKind.RESOURCE
        assert len(compiled.outcomes) == 1

    def test_traced_runs_bypass_the_memo(self):
        compiled = fresh_compiled(LOOP_SUM)
        bus = EventBus()
        recorder = TraceRecorder().attach(bus)
        model = CERBERUS.fresh_model(bus=bus)
        outcome = CompiledEvaluator(compiled, model).run()
        assert outcome.kind is OutcomeKind.EXIT
        assert recorder.seen > 0
        assert compiled.outcomes == {}

    def test_uncached_cli_runs_never_share_a_memo(self):
        # use_cache=False builds a fresh CompiledProgram per run, so
        # --no-compile-cache implies no run memo either.
        first = CERBERUS.run(LOOP_SUM, evaluator="compiled",
                             use_cache=False)
        second = CERBERUS.run(LOOP_SUM, evaluator="compiled",
                              use_cache=False)
        assert first == second
        assert first is not second


class TestPickleFallback:
    def test_compiled_program_reduces_to_core_and_recompiles(self):
        compiled = fresh_compiled(LOOP_SUM)
        CompiledEvaluator(compiled, CERBERUS.fresh_model()).run()
        clone = pickle.loads(pickle.dumps(compiled))
        assert isinstance(clone, CompiledProgram)
        assert clone.core is not compiled.core  # core pickles by value
        assert clone.snapshots == {} and clone.outcomes == {}
        assert CompiledEvaluator(clone, CERBERUS.fresh_model()).run() == \
            compiled.outcomes[next(iter(compiled.outcomes))]

    def test_worker_pool_runs_compiled_evaluator(self):
        # Tasks ship sources, not closures: a spawned/forked worker
        # compiles locally and must agree with the serial run.
        from repro.testsuite.compare import run_suite
        cases = all_cases()[:8]
        serial = run_suite(CERBERUS, cases, jobs=1, evaluator="compiled")
        pooled = run_suite(CERBERUS, cases, jobs=2, evaluator="compiled")
        assert [r.outcome for r in serial.results] == \
            [r.outcome for r in pooled.results]
