"""The Core IR pipeline: elaboration, the iterative evaluator, and the
guarantees that justify making it the process default (ISSUE 5).

Four properties are defended here:

* **Iterative execution** -- a depth-100000 call chain terminates with
  a structured ``resource_exhausted`` under the semantics' own frame
  limit, serially and through the worker pool, without the host
  recursion limit ever being consulted or adjusted (the
  ``sys.setrecursionlimit`` dance is gone from :mod:`repro.core.interp`
  and must not return).
* **Evaluation order** -- sequence points, short-circuiting, the
  conditional operator, and (defined-order) side-effect interleavings
  behave identically under the AST walker and the Core evaluator, down
  to stdout and the metered step count.
* **Deterministic elaboration** -- elaborating the same program twice
  yields the same op listing, and the Appendix-A intptr bitops program
  elaborates to a golden listing surfaced by ``repro run --dump-core``.
* **No signal-exception control flow** -- the Core evaluator performs
  break/continue as jumps and return as a frame pop; the walker's
  signal exceptions must not appear in its execution path.
"""

from __future__ import annotations

import pathlib
import sys

from repro.core import (
    CoreEvaluator, default_evaluator, elaborate_program, render_core,
)
from repro.core.interp import CALL_DEPTH_LIMIT
from repro.errors import OutcomeKind
from repro.impls import CERBERUS, by_name
from repro.perf import compile_core, compile_program
from repro.robust import Budget
from repro.testsuite.case import Expected, TestCase
from repro.testsuite.categories import Category
from repro.testsuite.compare import run_suite

GOLDEN = pathlib.Path(__file__).parent / "golden"

DEEP_CHAIN = """
int f(int n) {
  if (n == 0) { return 0; }
  return f(n - 1);
}
int main(void) { return f(100000); }
"""


def both(source: str, **kwargs):
    """One program under both evaluators; callers assert agreement."""
    return (CERBERUS.run(source, evaluator="ast", **kwargs),
            CERBERUS.run(source, evaluator="core", **kwargs))


class TestIterativeExecution:
    def test_compiled_is_the_default_evaluator(self):
        # The direct-threaded compiled backend took the default over
        # from the Core evaluator; both oracles stay selectable.
        assert default_evaluator() == "compiled"

    def test_deep_call_chain_is_structured_resource_exhausted(self):
        # The acceptance-criterion regression: depth 100000 under a
        # step budget ends at the deterministic frame limit -- not in a
        # RecursionError -- and the host recursion limit is never
        # touched to get there.
        before = sys.getrecursionlimit()
        out = CERBERUS.run(DEEP_CHAIN, budget=Budget(max_steps=10**7))
        assert sys.getrecursionlimit() == before
        assert out.kind is OutcomeKind.RESOURCE
        assert out.limit == "call-depth"
        assert str(CALL_DEPTH_LIMIT) in out.detail

    def test_deep_call_chain_serial_equals_parallel(self):
        case = TestCase(
            name="deep-call-chain",
            categories=(Category.CALLING_CONVENTION,),
            source=DEEP_CHAIN,
            expect=Expected(OutcomeKind.RESOURCE))
        budget = Budget(max_steps=10**7)
        serial = run_suite(CERBERUS, (case,), jobs=1, budget=budget)
        pooled = run_suite(CERBERUS, (case,), jobs=2, budget=budget)
        assert serial.results[0].outcome == pooled.results[0].outcome
        assert serial.results[0].outcome.limit == "call-depth"

    def test_recursionlimit_dance_has_not_returned(self):
        src = pathlib.Path("src/repro/core")
        for module in ("interp.py", "coreeval.py", "coreir.py",
                       "elaborate.py"):
            assert "setrecursionlimit" not in \
                (src / module).read_text(encoding="utf-8")

    def test_no_signal_exception_control_flow_in_core(self):
        # Return is a frame pop, break/continue are jumps: the walker's
        # signal exceptions must not appear in the Core execution path.
        # (elaborate.py may *name* them, but only to reproduce the
        # walker's crash behaviour for break/continue outside a loop.)
        src = pathlib.Path("src/repro/core")
        for module in ("coreeval.py", "coreir.py"):
            for line in (src / module).read_text(
                    encoding="utf-8").splitlines():
                if any(s in line for s in ("ReturnSignal", "BreakSignal",
                                           "ContinueSignal")):
                    # Prose may name them; code must not raise, catch,
                    # or import them.
                    assert not any(kw in line for kw in
                                   ("raise", "except", "import")), \
                        (module, line)


class TestEvaluationOrder:
    def assert_agree(self, source: str, exit_status: int,
                     stdout: str | None = None):
        ast, core = both(source)
        assert ast == core
        assert core.kind is OutcomeKind.EXIT
        assert core.exit_status == exit_status
        if stdout is not None:
            assert core.stdout == stdout

    def test_comma_sequences_left_to_right(self):
        self.assert_agree(
            "int main(void) { int x = 0;"
            " int y = (x = 3, x + 1); return y + x; }", 7)

    def test_logical_and_short_circuits(self):
        self.assert_agree("""
int g = 0;
int set(void) { g = 1; return 1; }
int main(void) { 0 && set(); return g; }
""", 0)

    def test_logical_or_short_circuits(self):
        self.assert_agree("""
int g = 0;
int set(void) { g = 1; return 1; }
int main(void) { 1 || set(); return g; }
""", 0)

    def test_logical_operators_evaluate_when_needed(self):
        self.assert_agree("""
int g = 0;
int set(void) { g = g + 10; return 1; }
int main(void) { 1 && set(); 0 || set(); return g; }
""", 20)

    def test_conditional_evaluates_one_arm(self):
        self.assert_agree("""
#include <stdio.h>
int pick(int which) {
  printf("%d", which);
  return which;
}
int main(void) { return 1 ? pick(3) : pick(4); }
""", 3, stdout="3")

    def test_unsequenced_side_effects_are_deterministic(self):
        # The subset fixes left-to-right operand evaluation; both
        # evaluators must make the same (single) choice.
        ast, core = both(
            "int main(void) { int i = 1;"
            " int r = (i = 2) + i; return r; }")
        assert ast == core
        assert core.kind is OutcomeKind.EXIT

    def test_call_arguments_left_to_right(self):
        self.assert_agree("""
#include <stdio.h>
int note(int n) { printf("%d", n); return n; }
int f(int a, int b, int c) { return a + b + c; }
int main(void) { return f(note(1), note(2), note(3)); }
""", 6, stdout="123")

    def test_step_counts_match_across_evaluators(self):
        # The charge-matching discipline: budgets metered on Core steps
        # cut off at exactly the walker's step number.
        source = """
int main(void) {
  int total = 0;
  int i;
  for (i = 0; i < 50; i = i + 1) { total = total + i; }
  return total > 255 ? 255 : total;
}
"""
        for max_steps in (50, 137, 1000):
            ast, core = both(source, budget=Budget(max_steps=max_steps))
            assert ast == core, max_steps


class TestElaborationDeterminism:
    INTPTR_BITOPS = None  # set lazily from the trace tests' constant

    def _bitops(self) -> str:
        from tests.test_obs_trace import INTPTR_BITOPS
        return INTPTR_BITOPS

    def test_double_elaboration_renders_identically(self):
        source = self._bitops()
        first = render_core(elaborate_program(
            compile_program(CERBERUS, source, use_cache=False)))
        second = render_core(elaborate_program(
            compile_program(CERBERUS, source, use_cache=False)))
        assert first == second

    def test_golden_intptr_bitops_listing(self):
        """``repro run --dump-core`` on the Appendix-A masking program
        (refresh deliberately: ``python -m repro run <file> --dump-core
        > tests/golden/core_intptr_bitops.txt``)."""
        core = compile_core(CERBERUS, self._bitops(), use_cache=False)
        listing = render_core(core) + "\n"
        expected = (GOLDEN / "core_intptr_bitops.txt").read_text()
        assert listing == expected

    def test_dump_core_flag_prints_the_listing(self, tmp_path, capsys):
        # Under the default (compiled) evaluator the listing includes
        # the compiler's fold/fuse annotations on top of the Core ops.
        from repro.cli import main
        from repro.core.compile import render_compiled
        from repro.perf import compile_threaded
        path = tmp_path / "bitops.c"
        path.write_text(self._bitops(), encoding="utf-8")
        status = main(["run", str(path), "--dump-core"])
        printed = capsys.readouterr().out
        assert status == 0
        assert printed == render_compiled(
            compile_threaded(CERBERUS, self._bitops())) + "\n"
        assert "func main" in printed
        assert render_core(compile_core(CERBERUS, self._bitops())) \
            .splitlines()[0] in printed

    def test_optimised_ast_feeds_elaboration(self):
        # The modelled optimiser runs before elaboration, so the Core
        # program differs across opt levels exactly when the AST does.
        source = """
int main(void) {
  int a[1] = {7};
  int i = 0;
  return a[i];
}
"""
        o0 = render_core(compile_core(CERBERUS, source, use_cache=False))
        o3 = render_core(compile_core(by_name("clang-morello-O3"),
                                      source, use_cache=False))
        assert "func main" in o0 and "func main" in o3
