"""The execution engine: compile cache, worker pool, and determinism.

Covers the engine's contract: parallel suite/compare/fuzz runs are
bit-identical to serial ones, the compilation cache never leaks a
compiled program across configuration axes that affect compilation,
and explicit-empty suite selections stay empty.
"""

import pathlib

import pytest

from repro.errors import CSyntaxError
from repro.fuzz.driver import iteration_seed, program_for, run_fuzz
from repro.impls import ALL_IMPLEMENTATIONS
from repro.impls.registry import (
    CERBERUS,
    CHERIOT_ABSTRACT,
    CLANG_MORELLO_O0,
    CLANG_MORELLO_O3,
    CLANG_MORELLO_O3_SUBOBJECT,
    CERBERUS_PERMISSIVE,
)
from repro.obs.metrics import Metrics
from repro.perf.cache import CompileCache, compile_program
from repro.perf.pool import parallel_map, resolve_jobs
from repro.reporting.tables import render_compliance
from repro.testsuite.compare import compare_implementations, run_suite
from repro.testsuite.suite import all_cases

SOURCE = "int main(void) { int a[2]; a[0] = 7; return a[0]; }\n"
BAD_SOURCE = "int main(void { return 0; }\n"


class TestCompileCache:
    def test_hit_after_miss(self):
        cache = CompileCache(disk=None)
        first = cache.compile(CERBERUS, SOURCE)
        second = cache.compile(CERBERUS, SOURCE)
        assert first is second
        assert cache.stats.compiled.hits == 1
        assert cache.stats.compiled.misses == 1
        assert cache.stats.compiled.hit_rate == 0.5
        # One parse actually ran -- the "compiles performed" number the
        # warm-start gate asserts on.
        assert cache.stats.compiles_performed == 1

    def test_shared_across_run_only_axes(self):
        # cerberus and clang-morello-O0 differ only in address map and
        # mode -- run-time axes -- so they share one compiled program.
        cache = CompileCache(disk=None)
        ref = cache.compile(CERBERUS, SOURCE)
        hw = cache.compile(CLANG_MORELLO_O0, SOURCE)
        assert ref is hw
        assert cache.stats.compiled.hits == 1

    @pytest.mark.parametrize("other", [
        CLANG_MORELLO_O3,            # opt_level axis
        CLANG_MORELLO_O3_SUBOBJECT,  # opt_level + subobject_bounds axes
        CHERIOT_ABSTRACT,            # arch axis
        CERBERUS_PERMISSIVE,         # options axis
    ])
    def test_isolated_across_compile_axes(self, other):
        # Distinct (arch, opt_level, subobject_bounds, options) keys
        # never serve each other's entries: two misses, two entries.
        cache = CompileCache(disk=None)
        cache.compile(CERBERUS, SOURCE)
        cache.compile(other, SOURCE)
        assert cache.stats.compiled.hits == 0
        assert cache.stats.compiled.misses == 2
        assert cache.entry_counts()["compiled"] == 2

    def test_subobject_key_isolated_from_plain_o3(self):
        cache = CompileCache(disk=None)
        plain = cache.compile(CLANG_MORELLO_O3, SOURCE)
        subobject = cache.compile(CLANG_MORELLO_O3_SUBOBJECT, SOURCE)
        assert subobject is not plain
        assert cache.stats.compiled.hits == 0

    def test_parse_shared_across_opt_levels(self):
        # O0 and O3 compile to different programs but share the parse.
        cache = CompileCache(disk=None)
        cache.compile(CERBERUS, SOURCE)
        assert len(cache._parsed) == 1
        cache.compile(CLANG_MORELLO_O3, SOURCE)
        assert len(cache._parsed) == 1
        assert cache.stats.parse.hits == 1
        assert cache.stats.parse.misses == 1

    def test_frontend_error_cached(self):
        cache = CompileCache(disk=None)
        with pytest.raises(CSyntaxError):
            cache.compile(CERBERUS, BAD_SOURCE)
        with pytest.raises(CSyntaxError):
            cache.compile(CERBERUS, BAD_SOURCE)
        assert cache.stats.compiled.hits == 1

    def test_core_layer_shares_elaborated_program(self):
        cache = CompileCache(disk=None)
        first = cache.core(CERBERUS, SOURCE)
        second = cache.core(CLANG_MORELLO_O0, SOURCE)
        assert first is second
        assert cache.stats.core.hits == 1
        assert cache.stats.core.misses == 1

    def test_elaboration_error_cached_once_across_impls(self, monkeypatch):
        # A program the elaborator rejects is rejected once per compile
        # key, not once per implementation: cerberus and
        # clang-morello-O0 share the key, so the second lookup must
        # re-raise the cached error without re-elaborating.
        import repro.perf.cache as cache_mod
        from repro.core import ElaborationError
        calls = []

        def failing(program):
            calls.append(program)
            raise ElaborationError("synthetic elaboration failure")

        monkeypatch.setattr(cache_mod, "elaborate_program", failing)
        cache = CompileCache(disk=None)
        with pytest.raises(ElaborationError):
            cache.core(CERBERUS, SOURCE)
        with pytest.raises(ElaborationError):
            cache.core(CLANG_MORELLO_O0, SOURCE)
        assert len(calls) == 1

    def test_elaboration_error_is_a_frontend_outcome(self, monkeypatch):
        # Through Implementation.run the cached elaboration rejection
        # surfaces as the same structured frontend_error outcome as a
        # parse failure.
        import repro.perf.cache as cache_mod
        from repro.core import ElaborationError
        from repro.errors import OutcomeKind

        def failing(program):
            raise ElaborationError("synthetic elaboration failure")

        monkeypatch.setattr(cache_mod, "elaborate_program", failing)
        cache_mod.clear_cache()
        try:
            outcome = CERBERUS.run(SOURCE, evaluator="core")
            assert outcome.kind is OutcomeKind.ERROR
            assert "synthetic elaboration failure" in outcome.detail
        finally:
            cache_mod.clear_cache()

    def test_eviction_is_bounded(self):
        cache = CompileCache(maxsize=2, disk=None)
        for status in range(4):
            cache.compile(CERBERUS,
                          f"int main(void) {{ return {status}; }}\n")
        assert cache.entry_counts()["compiled"] <= 2
        assert len(cache._parsed) <= 2

    def test_uncached_compile_bypasses_global_cache(self):
        from repro.perf import global_cache
        before = global_cache().stats.lookups
        program = compile_program(CERBERUS, SOURCE, use_cache=False)
        assert program.functions
        assert global_cache().stats.lookups == before

    def test_cached_outcome_matches_uncached(self):
        for impl in ALL_IMPLEMENTATIONS:
            cached = impl.run(SOURCE, use_cache=True)
            uncached = impl.run(SOURCE, use_cache=False)
            assert cached == uncached, impl.name


class TestThreadedCacheLayer:
    """The fourth layer: direct-threaded CompiledPrograms."""

    def test_hit_after_miss_shares_the_compiled_program(self):
        cache = CompileCache()
        first = cache.threaded(CERBERUS, SOURCE)
        second = cache.threaded(CERBERUS, SOURCE)
        assert first is second
        assert len(cache._threaded) == 1

    def test_shared_across_run_only_axes(self):
        cache = CompileCache()
        assert cache.threaded(CERBERUS, SOURCE) is \
            cache.threaded(CLANG_MORELLO_O0, SOURCE)

    def test_isolated_from_the_core_layer(self):
        # The threaded layer holds CompiledPrograms built *from* the
        # core layer's entries, never aliases into it: requesting the
        # Core program afterwards serves the Core object, and the two
        # layers key and evict independently.
        from repro.core.compile import CompiledProgram
        from repro.core.coreir import CoreProgram
        cache = CompileCache()
        threaded = cache.threaded(CERBERUS, SOURCE)
        core = cache.core(CERBERUS, SOURCE)
        assert isinstance(threaded, CompiledProgram)
        assert isinstance(core, CoreProgram)
        assert threaded is not core
        assert threaded.core is core  # built from the cached Core
        assert len(cache._threaded) == len(cache._core) == 1

    def test_isolated_across_compile_axes(self):
        cache = CompileCache()
        plain = cache.threaded(CLANG_MORELLO_O3, SOURCE)
        subobject = cache.threaded(CLANG_MORELLO_O3_SUBOBJECT, SOURCE)
        assert plain is not subobject
        assert len(cache._threaded) == 2

    def test_eviction_is_bounded(self):
        cache = CompileCache(maxsize=2)
        for status in range(4):
            cache.threaded(CERBERUS,
                           f"int main(void) {{ return {status}; }}\n")
        assert len(cache._threaded) <= 2

    def test_frontend_error_cached_in_threaded_layer(self):
        cache = CompileCache()
        with pytest.raises(CSyntaxError):
            cache.threaded(CERBERUS, BAD_SOURCE)
        with pytest.raises(CSyntaxError):
            cache.threaded(CERBERUS, BAD_SOURCE)
        assert len(cache._threaded) == 1

    def test_uncached_threaded_compile_bypasses_every_layer(self):
        # The --no-compile-cache contract for the compiled evaluator:
        # no lookups, no stored entries, a private program per call
        # (hence a private run memo; see test_core_compile).
        from repro.perf import global_cache
        from repro.perf.cache import compile_threaded
        before = global_cache().stats.lookups
        entries = len(global_cache()._threaded)
        first = compile_threaded(CERBERUS, SOURCE, use_cache=False)
        second = compile_threaded(CERBERUS, SOURCE, use_cache=False)
        assert first is not second
        assert global_cache().stats.lookups == before
        assert len(global_cache()._threaded) == entries

    def test_cached_compiled_outcome_matches_uncached(self):
        for impl in ALL_IMPLEMENTATIONS:
            cached = impl.run(SOURCE, use_cache=True,
                              evaluator="compiled")
            uncached = impl.run(SOURCE, use_cache=False,
                                evaluator="compiled")
            assert cached == uncached, impl.name


class TestBenchGateSkipReason:
    """benchmarks/bench_engine.py records *why* a gate did not apply."""

    @staticmethod
    def bench_module():
        import importlib.util
        path = pathlib.Path(__file__).parent.parent / "benchmarks" / \
            "bench_engine.py"
        spec = importlib.util.spec_from_file_location("bench_engine",
                                                      path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_single_core_skips_with_reason(self):
        bench = self.bench_module()
        assert bench.throughput_gate_skip_reason(4, 1) == "cores<2"
        assert bench.throughput_gate_skip_reason(4, None) == "cores<2"

    def test_serial_request_skips_with_reason(self):
        bench = self.bench_module()
        assert bench.throughput_gate_skip_reason(1, 8) == "jobs<2"

    def test_applicable_gate_has_no_reason(self):
        bench = self.bench_module()
        assert bench.throughput_gate_skip_reason(4, 8) == ""


class TestCompileRunSplit:
    def test_run_compiled_reusable_across_runs(self):
        program = CERBERUS.compile(SOURCE)
        first = CERBERUS.run_compiled(program)
        second = CERBERUS.run_compiled(program)
        assert first == second
        assert first.exit_status == 7

    def test_frontend_error_still_an_outcome(self):
        outcome = CERBERUS.run(BAD_SOURCE)
        from repro.errors import OutcomeKind
        assert outcome.kind is OutcomeKind.ERROR


class TestSuiteSelection:
    def test_none_selects_full_suite(self):
        report = run_suite(CERBERUS, None)
        assert len(report.results) == len(all_cases())

    def test_empty_selection_is_empty_report(self):
        # The old truthiness fallback silently ran all 94 tests here.
        report = run_suite(CERBERUS, ())
        assert report.results == []
        assert (report.passed, report.failed, report.unclaimed) == (0, 0, 0)

    def test_explicit_selection_runs_exactly_those(self):
        picked = all_cases()[:3]
        report = run_suite(CERBERUS, picked)
        assert [r.case.name for r in report.results] == \
            [c.name for c in picked]


class TestMetricsGuards:
    def test_double_start_raises(self):
        metrics = Metrics().start()
        with pytest.raises(RuntimeError):
            metrics.start()

    def test_finish_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Metrics().finish()

    def test_start_finish_cycles_accumulate(self):
        metrics = Metrics()
        metrics.start()
        metrics.finish()
        first = metrics.wall_seconds
        metrics.start()
        metrics.finish()
        assert metrics.wall_seconds >= first

    def test_merge_sums(self):
        left = Metrics()
        left.count("derivations", 2)
        left.steps = 10
        left.wall_seconds = 0.5
        right = Metrics()
        right.count("derivations", 3)
        right.count("allocator.reserved_bytes", 16)
        right.steps = 5
        right.wall_seconds = 0.25
        left.merge(right)
        assert left.counters["derivations"] == 5
        assert left.counters["allocator.reserved_bytes"] == 16
        assert left.steps == 15
        assert left.wall_seconds == 0.75

    def test_merge_running_timer_raises(self):
        with pytest.raises(RuntimeError):
            Metrics().merge(Metrics().start())


def _square(value: int) -> int:
    return value * value


class TestParallelMap:
    def test_serial_and_parallel_agree_in_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=1) == \
            parallel_map(_square, items, jobs=2) == \
            [v * v for v in items]

    def test_resolve_jobs(self):
        import os
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)


class TestParallelEquality:
    """Parallel runs must be bit-identical to serial ones."""

    CASES = all_cases()[:12]

    def test_suite_parallel_equals_serial(self):
        serial = run_suite(CERBERUS, self.CASES, jobs=1)
        parallel = run_suite(CERBERUS, self.CASES, jobs=2)
        assert [r.outcome for r in serial.results] == \
            [r.outcome for r in parallel.results]
        assert [r.passed for r in serial.results] == \
            [r.passed for r in parallel.results]

    def test_compare_parallel_equals_serial(self):
        serial = render_compliance(compare_implementations(
            ALL_IMPLEMENTATIONS, self.CASES, jobs=1))
        parallel = render_compliance(compare_implementations(
            ALL_IMPLEMENTATIONS, self.CASES, jobs=2))
        assert serial == parallel

    def test_fuzz_parallel_equals_serial(self):
        serial = run_fuzz(seed=3, iterations=8, shrink_budget=20, jobs=1)
        parallel = run_fuzz(seed=3, iterations=8, shrink_budget=20, jobs=2)
        assert serial.iterations == parallel.iterations
        assert serial.reference_counts == parallel.reference_counts
        assert [g.describe() for g in serial.sorted_groups()] == \
            [g.describe() for g in parallel.sorted_groups()]
        assert [(g.first_iteration, g.example.render())
                for g in serial.sorted_groups()] == \
            [(g.first_iteration, g.example.render())
             for g in parallel.sorted_groups()]
        assert sorted(g.minimized_source for g in serial.groups) == \
            sorted(g.minimized_source for g in parallel.groups)

    def test_suite_metrics_merge_parallel_equals_serial(self):
        serial = run_suite(CERBERUS, self.CASES, jobs=1,
                           with_metrics=True)
        parallel = run_suite(CERBERUS, self.CASES, jobs=2,
                             with_metrics=True)
        assert serial.metrics is not None
        assert serial.metrics.steps == parallel.metrics.steps
        # Wall time is timing-dependent; event counters are not.
        assert serial.metrics.counters == parallel.metrics.counters
        assert serial.metrics.steps > 0


class TestFuzzIterationSeeds:
    def test_iteration_seed_is_stable_and_hash_free(self):
        assert iteration_seed(0, 5) == "0:5"
        assert iteration_seed(12, 34) == "12:34"

    def test_program_reproducible_in_isolation(self):
        campaign = [program_for(7, i).render() for i in range(6)]
        # Recomputing any single iteration, in any order, matches.
        assert program_for(7, 4).render() == campaign[4]
        assert program_for(7, 0).render() == campaign[0]
        recomputed = [program_for(7, i).render()
                      for i in reversed(range(6))]
        assert recomputed == campaign[::-1]

    def test_distinct_iterations_differ(self):
        rendered = {program_for(0, i).render() for i in range(8)}
        assert len(rendered) > 1

    def test_distinct_campaigns_differ(self):
        assert [program_for(1, i).render() for i in range(4)] != \
            [program_for(2, i).render() for i in range(4)]

    def test_run_fuzz_examples_come_from_derived_seeds(self):
        report = run_fuzz(seed=3, iterations=6, shrink_budget=10)
        for group in report.groups:
            assert group.example.render() == \
                program_for(3, group.first_iteration).render()
