"""Smoke tests for the example scripts and the Outcome/error types."""

import pathlib
import subprocess
import sys

import pytest

from repro.errors import (
    AssertionFailure, CheriTrap, Outcome, OutcomeKind, TrapKind, UB,
    UndefinedBehaviour,
)

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300,
        cwd=script.parent.parent)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples should explain themselves"


def test_example_count_meets_deliverable():
    assert len(EXAMPLES) >= 3
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names


class TestOutcome:
    def test_exited(self):
        out = Outcome.exited(3, "hi")
        assert out.kind is OutcomeKind.EXIT
        assert not out.ok
        assert Outcome.exited(0).ok
        assert out.describe() == "exit 3"

    def test_undefined(self):
        out = Outcome.undefined(UB.CHERI_INVALID_CAP, "d")
        assert out.ub is UB.CHERI_INVALID_CAP
        assert "UB_CHERI_InvalidCap" in out.describe()

    def test_trapped(self):
        out = Outcome.trapped(TrapKind.BOUNDS_VIOLATION)
        assert "bounds violation" in out.describe()

    def test_aborted_and_error(self):
        assert "abort" in Outcome.aborted("x").describe()
        assert "error" in Outcome.frontend_error("x").describe()

    def test_ub_is_cheri_flag(self):
        assert UB.CHERI_BOUNDS_VIOLATION.is_cheri
        assert not UB.SIGNED_OVERFLOW.is_cheri

    def test_exception_messages(self):
        exc = UndefinedBehaviour(UB.DOUBLE_FREE, "ptr")
        assert "UB_double_free: ptr" in str(exc)
        trap = CheriTrap(TrapKind.TAG_VIOLATION)
        assert "tag violation" in str(trap)
        assert "assertion failed" in str(AssertionFailure("x == y"))
