"""Golden-output regression tests for the deterministic paper artefacts.

The Appendix-A trace, the Figure-1 layout, and the S5 compliance report
are fully deterministic, so any change to their regenerated text signals
a semantic change in capability printing, allocator address policy, the
encoding layout, or an implementation's behaviour on the 94-test suite.
The golden copies live in ``tests/golden/``; refresh them deliberately
when a change is intended:

    pytest benchmarks/bench_appendix_a.py benchmarks/bench_figure1.py \
        --benchmark-only
    cp benchmarks/reports/{appendix_a,figure1}.txt tests/golden/
    python -c "from tests.test_golden_reports import regenerate_compliance; \
        print(regenerate_compliance(), end='')" > tests/golden/compliance.txt
"""

import pathlib

import pytest

GOLDEN = pathlib.Path(__file__).parent / "golden"

# The paper's Appendix A listing, verbatim.
APPENDIX_SRC = r"""
#include <stdint.h>
#include <stdio.h>
#include <limits.h>
#include "capprint.h"

int main(void) {
  int x[2]={42,43};
  intptr_t ip = (intptr_t)&x;
  fprintf(stderr,"cap %" PTR_FMT "\n", sptr((void*)ip));
  intptr_t ip2 = ip & UINT_MAX;
  fprintf(stderr,"cap&uint %" PTR_FMT "\n", sptr((void*)ip2));
  intptr_t ip3 = ip & INT_MAX;
  fprintf(stderr,"cap&int %" PTR_FMT "\n", sptr((void*)ip3));
}
"""


def regenerate_appendix() -> str:
    from repro.impls import APPENDIX_IMPLEMENTATIONS
    blocks = []
    for impl in APPENDIX_IMPLEMENTATIONS:
        out = impl.run(APPENDIX_SRC)
        blocks.append(f"{impl.name}:\n{out.stdout}")
    return "\n".join(blocks)


def regenerate_figure1() -> str:
    import importlib.util
    import sys
    bench_dir = pathlib.Path(__file__).parent.parent / "benchmarks"
    sys.path.insert(0, str(bench_dir))
    try:
        spec = importlib.util.spec_from_file_location(
            "bench_figure1", bench_dir / "bench_figure1.py")
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod.render_figure1()
    finally:
        sys.path.remove(str(bench_dir))


def regenerate_compliance() -> str:
    from repro.impls.registry import ALL_IMPLEMENTATIONS
    from repro.reporting.tables import render_compliance
    from repro.testsuite.compare import compare_implementations
    return render_compliance(compare_implementations(ALL_IMPLEMENTATIONS))


def test_appendix_a_is_stable():
    assert regenerate_appendix() == (GOLDEN / "appendix_a.txt").read_text()


def test_figure1_is_stable():
    assert regenerate_figure1() == (GOLDEN / "figure1.txt").read_text()


def test_compliance_report_is_stable():
    """The full S5 comparison (7 implementations x 94 tests) renders
    byte-identically run over run; a diff here means an implementation's
    observable behaviour moved."""
    assert regenerate_compliance() == (GOLDEN / "compliance.txt").read_text()
