"""Suite-integrity guards: Table 1 deficits and name uniqueness.

These fail loudly (naming the offending module) if a program module
edit ever drifts the assembled suite away from the paper's Table 1 or
introduces a duplicate test name.
"""

from __future__ import annotations

import pytest

from repro.testsuite import suite as suite_mod
from repro.testsuite.case import TestCase, exits
from repro.testsuite.categories import Category
from repro.testsuite.suite import all_cases, table1_deficits


def test_table1_deficits_all_zero():
    assert table1_deficits() == {}


def test_case_names_unique_across_program_modules():
    names = [case.name for case in all_cases()]
    assert len(names) == len(set(names))


def test_duplicate_name_error_names_the_module():
    """``all_cases`` must say *which* program module collided."""
    from repro.testsuite.programs import alignment_allocator, intptr
    first = alignment_allocator.CASES[0]
    clone = TestCase(name=first.name,
                     categories=(Category.INTPTR_PROPERTIES,),
                     source="int main(void) { return 0; }",
                     expect=exits(0), description="collision probe")

    original = intptr.CASES
    all_cases.cache_clear()
    intptr.CASES = original + [clone] if isinstance(original, list) \
        else tuple(original) + (clone,)
    try:
        with pytest.raises(ValueError) as excinfo:
            suite_mod.all_cases()
        message = str(excinfo.value)
        assert first.name in message
        assert "programs.intptr" in message          # the offender
        assert "programs.alignment_allocator" in message   # first definer
    finally:
        intptr.CASES = original
        all_cases.cache_clear()
    # The restored suite assembles cleanly again.
    assert len(suite_mod.all_cases()) == 94
