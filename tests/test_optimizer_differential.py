"""Differential testing of the modelled optimiser: on *well-defined*
programs, every optimisation level must agree with the abstract machine
(optimisations may only exploit UB, never change defined behaviour)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import OutcomeKind
from repro.impls import CERBERUS, by_name

O0 = by_name("clang-morello-O0")
O3 = by_name("clang-morello-O3")


@st.composite
def defined_programs(draw):
    """Random well-defined programs: straight-line integer/array/pointer
    code with in-bounds accesses and a loop or two."""
    n = draw(st.integers(2, 6))
    lines = [
        "#include <stdint.h>",
        "int main(void) {",
        f"  int a[{n}];",
        f"  for (int i = 0; i < {n}; i++) a[i] = i + 1;",
        "  int acc = 0;",
        "  int t = 0;",
    ]
    stmts = draw(st.integers(2, 8))
    for _ in range(stmts):
        kind = draw(st.integers(0, 6))
        if kind == 0:
            idx = draw(st.integers(0, n - 1))
            lines.append(f"  acc += a[{idx}];")
        elif kind == 1:
            c = draw(st.integers(-50, 50))
            lines.append(f"  t = acc + {c};")
        elif kind == 2:
            lines.append("  acc += t;")
        elif kind == 3:
            idx = draw(st.integers(0, n - 1))
            lines.append(f"  {{ int *p = a + {idx}; acc += *p; }}")
        elif kind == 4:
            a_off = draw(st.integers(0, n))
            b_off = draw(st.integers(0, a_off))
            lines.append(f"  {{ int *p = a + {a_off} - {b_off};"
                         f" acc += p == a ? 1 : 2; }}")
        elif kind == 5:
            bound = draw(st.integers(0, n))
            lines.append(f"  for (int i = 0; i < {bound}; i++)"
                         " acc += a[i];")
        else:
            idx = draw(st.integers(0, n - 1))
            lines.append(f"  a[{idx}] = a[{idx}] + t;")
        # Keep values bounded so signed overflow cannot occur.
        lines.append("  acc &= 0xffff;")
        lines.append("  t &= 0xff;")
    lines.append("  return acc & 127;")
    lines.append("}")
    return "\n".join(lines)


@given(src=defined_programs())
@settings(max_examples=80, deadline=None)
def test_optimisation_preserves_defined_behaviour(src):
    oracle = CERBERUS.run(src)
    assert oracle.kind is OutcomeKind.EXIT, (oracle.describe(),
                                             oracle.detail, src)
    for impl in (O0, O3):
        got = impl.run(src)
        assert got.kind is OutcomeKind.EXIT, (impl.name, got.describe(),
                                              got.detail, src)
        assert got.exit_status == oracle.exit_status, (impl.name, src)


@st.composite
def byte_copy_programs(draw):
    """Programs copying pointer representations in the ways S3.5 cares
    about; the optimiser must keep defined copies working."""
    use_memcpy = draw(st.booleans())
    if use_memcpy:
        body = "  memcpy(&dst, &src, sizeof(int*));"
    else:
        body = ("  for (int i = 0; i < (int)sizeof(int*); i++)\n"
                "    ((unsigned char*)&dst)[i]"
                " = ((unsigned char*)&src)[i];")
    check = draw(st.sampled_from([
        "return dst == src ? 0 : 1;",            # address compare: defined
        "return (int)((uintptr_t)dst & 1);",      # address use: defined
    ]))
    return f"""
#include <string.h>
#include <stdint.h>
int main(void) {{
  int x = 3;
  int *src = &x;
  int *dst;
{body}
  {check}
}}
"""


@given(src=byte_copy_programs())
@settings(max_examples=40, deadline=None)
def test_representation_copies_defined_uses_agree(src):
    """Uses that S3.5 keeps defined (address comparison/inspection of a
    byte-copied pointer) agree across optimisation levels."""
    oracle = CERBERUS.run(src)
    assert oracle.kind is OutcomeKind.EXIT, (oracle.describe(),
                                             oracle.detail)
    for impl in (O0, O3):
        got = impl.run(src)
        assert got.kind is OutcomeKind.EXIT
        assert got.exit_status == oracle.exit_status, (impl.name, src)
