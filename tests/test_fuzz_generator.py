"""Unit tests for the differential-fuzzing subsystem itself.

Covers the seeded generator (determinism, frontend acceptance), the
matched-reference oracle (clean programs classify cleanly, known causes
attribute correctly), the AST-level shrinker (minimality, budget,
predicate contract), the corpus round trip, and the ``repro fuzz`` CLI.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import OutcomeKind
from repro.fuzz import (
    Cause,
    CorpusCase,
    FUZZ_TARGETS,
    FuzzProgram,
    FuzzStmt,
    ProgramGenerator,
    evaluate_program,
    load_case,
    load_corpus,
    run_fuzz,
    save_case,
    shrink,
)
from repro.impls.registry import by_name

N_GENERATOR_SAMPLES = 25


def _programs(seed: int, count: int) -> list[FuzzProgram]:
    generator = ProgramGenerator(random.Random(seed))
    return [generator.generate() for _ in range(count)]


def test_generator_is_deterministic_per_seed():
    first = [p.render() for p in _programs(7, N_GENERATOR_SAMPLES)]
    second = [p.render() for p in _programs(7, N_GENERATOR_SAMPLES)]
    other = [p.render() for p in _programs(8, N_GENERATOR_SAMPLES)]
    assert first == second
    assert first != other


@pytest.mark.parametrize("impl_name", ["cerberus", "cerberus-cheriot"])
def test_generated_programs_are_frontend_clean(impl_name):
    """Every generated program must get past the shared frontend on both
    capability formats: rejection would be a generator bug, and the
    oracle classifies it as a finding."""
    impl = by_name(impl_name)
    for program in _programs(11, N_GENERATOR_SAMPLES):
        outcome = impl.run(program.render())
        assert outcome.kind is not OutcomeKind.ERROR, \
            f"{impl_name} rejected:\n{program.render()}\n{outcome.detail}"


def test_trivial_program_classifies_clean_everywhere():
    program = FuzzProgram(arr_len=2, heap_len=2, stmts=(
        FuzzStmt("arith", "acc += a[{0}];", (0,)),))
    verdict = evaluate_program(program, FUZZ_TARGETS)
    assert verdict.clean
    assert verdict.reference is not None
    assert verdict.reference.kind is OutcomeKind.EXIT
    # In-bounds array reads agree on every implementation: the only
    # divergences may come from configuration axes, never unexplained.
    assert all(not d.is_finding for d in verdict.divergences)


def test_oracle_attributes_masking_to_the_address_map():
    """The Appendix-A shape: ``& INT_MAX`` masking has address-map
    dependent behaviour; the oracle must attribute it mechanically."""
    program = FuzzProgram(arr_len=2, heap_len=2, stmts=(
        FuzzStmt("intptr-mask",
                 "ip = (intptr_t)p; ip = ip & 0x7fffffff; "
                 "acc += (int)(unsigned char)((uintptr_t)ip >> 4);", ()),))
    verdict = evaluate_program(program, FUZZ_TARGETS)
    assert verdict.clean
    causes = {d.impl_name: d.cause for d in verdict.divergences}
    assert causes.get("gcc-morello-O0") is Cause.ADDRESS_MAP


def test_oracle_attributes_oob_arithmetic_to_ub_licence():
    program = FuzzProgram(arr_len=2, heap_len=2, stmts=(
        FuzzStmt("oob", "p = p + {0}; acc += (int)(p != a);", (77,)),))
    verdict = evaluate_program(program, FUZZ_TARGETS)
    assert verdict.clean
    assert verdict.reference.kind is OutcomeKind.UNDEFINED
    causes = {d.impl_name: d.cause for d in verdict.divergences}
    # Hardware runs past the abstract machine's UB point (the S3
    # licence); the permissive mode diverges on its own axis.
    assert causes.get("clang-morello-O0") is Cause.UB_LICENSED
    assert causes.get("cerberus-permissive") is Cause.MEMORY_MODEL_MODE


def _statement(tag: str, text: str, *slots: int) -> FuzzStmt:
    return FuzzStmt(tag, text, tuple(slots))


def test_shrinker_drops_irrelevant_statements_and_slots():
    program = FuzzProgram(arr_len=8, heap_len=6, stmts=(
        _statement("noise1", "acc += a[{0}];", 3),
        _statement("key", "acc += {0};", 40),
        _statement("noise2", "u = u ^ {0};", 123),
    ))

    def predicate(candidate: FuzzProgram) -> bool:
        return any(s.tag == "key" and s.slots[0] >= 10
                   for s in candidate.stmts)

    minimized = shrink(program, predicate)
    assert [s.tag for s in minimized.stmts] == ["key"]
    # The slot walked down toward the predicate's boundary and the
    # prologue lengths collapsed to their minimum.
    assert minimized.stmts[0].slots[0] < 40
    assert predicate(minimized)
    assert (minimized.arr_len, minimized.heap_len) == (2, 2)


def test_shrinker_rejects_a_failing_input():
    program = FuzzProgram(arr_len=2, heap_len=2, stmts=())
    with pytest.raises(ValueError):
        shrink(program, lambda candidate: False)


def test_shrinker_respects_its_evaluation_budget():
    calls = 0
    program = FuzzProgram(arr_len=8, heap_len=6, stmts=tuple(
        _statement(f"s{i}", "acc += {0};", 1000 + i) for i in range(10)))

    def predicate(candidate: FuzzProgram) -> bool:
        nonlocal calls
        calls += 1
        return True

    shrink(program, predicate, max_evals=17)
    # One call validates the input; the rest stay within the budget.
    assert calls <= 18


def test_corpus_roundtrip(tmp_path):
    program = FuzzProgram(arr_len=2, heap_len=2, stmts=(
        _statement("arith", "acc += a[{0}];", 1),))
    verdict = evaluate_program(program, FUZZ_TARGETS)
    case = CorpusCase.from_outcomes(
        cause="address-map", source=verdict.source,
        outcomes=verdict.outcomes, seed=5, note="round trip")
    path = save_case(tmp_path, case)
    loaded = load_case(path)
    assert loaded == case
    assert load_corpus(tmp_path) == [case]
    assert loaded.replay() == []


def test_run_fuzz_smoke(tmp_path):
    report = run_fuzz(seed=3, iterations=4, shrink_budget=40,
                      corpus_dir=tmp_path, save_known=True)
    assert report.ok, [g.describe() for g in report.findings]
    assert report.iterations == 4
    # Every divergence group carries a minimized, still-diverging program.
    for group in report.groups:
        assert group.minimized_source
        assert group.minimized_outcomes
    # save_known wrote each group exactly once, replayable from disk.
    assert len(report.corpus_paths) == len(
        {(g.impl_name, g.cause, g.reference_kind, g.observed_kind)
         for g in report.groups})
    for case in load_corpus(tmp_path):
        assert case.replay() == []


def test_fuzz_cli_smoke(capsys):
    from repro.cli import main
    status = main(["fuzz", "--seed", "3", "--iterations", "2", "--quiet"])
    out = capsys.readouterr().out
    assert status == 0
    assert "Differential fuzz: seed 3, 2 programs" in out
    assert "known-cause" in out or "No divergences" in out
