"""Pointer arithmetic (S3.2), comparisons (S3.6), and the PNVI-ae-udi
pointer/integer conversions (S2.3, S3.3, S3.11)."""

import pytest

from repro.ctypes import ArrayT, IKind, INT, Pointer, UCHAR, VOID
from repro.errors import UB, UndefinedBehaviour
from repro.memory import IntegerValue, MVInteger
from repro.memory.allocation import AllocKind
from repro.memory.provenance import ProvKind


@pytest.fixture
def array(model):
    t = ArrayT(elem=INT, length=4)
    p = model.allocate_object(t, AllocKind.STACK, "a")
    return p


class TestArrayShift:
    def test_within_bounds(self, model, array):
        p2 = model.array_shift(array, INT, 2)
        assert p2.address == array.address + 8
        assert p2.cap.tag
        assert p2.prov == array.prov

    def test_one_past_allowed(self, model, array):
        end = model.array_shift(array, INT, 4)
        assert end.cap.tag

    def test_beyond_one_past_is_ub(self, model, array):
        with pytest.raises(UndefinedBehaviour) as exc:
            model.array_shift(array, INT, 5)
        assert exc.value.ub is UB.OUT_OF_BOUNDS_PTR_ARITH

    def test_below_base_is_ub(self, model, array):
        with pytest.raises(UndefinedBehaviour) as exc:
            model.array_shift(array, INT, -1)
        assert exc.value.ub is UB.OUT_OF_BOUNDS_PTR_ARITH

    def test_null_plus_zero_ok(self, model):
        null = model.null_pointer()
        assert model.array_shift(null, INT, 0) is null

    def test_null_plus_nonzero_ub(self, model):
        with pytest.raises(UndefinedBehaviour):
            model.array_shift(model.null_pointer(), INT, 1)

    def test_dead_allocation_arith_is_ub(self, model, array):
        model.kill_allocation(array.prov.ident)
        with pytest.raises(UndefinedBehaviour) as exc:
            model.array_shift(array, INT, 1)
        assert exc.value.ub is UB.ACCESS_DEAD_ALLOCATION

    def test_hardware_unchecked(self, hw_model):
        t = ArrayT(elem=INT, length=4)
        a = hw_model.allocate_object(t, AllocKind.STACK, "a")
        far = hw_model.array_shift(a, INT, 100001)
        assert not far.cap.tag       # representability limit
        assert far.address == (a.address + 400004) & ((1 << 64) - 1)


class TestComparisons:
    def test_eq_is_address_only(self, model, array):
        clone = array.with_cap(array.cap.with_tag(False))
        assert model.eq(array, clone)

    def test_relational_same_object(self, model, array):
        hi = model.array_shift(array, INT, 3)
        assert model.relational("<", array, hi)
        assert model.relational(">=", hi, array)

    def test_relational_different_provenance_ub(self, model):
        a = model.allocate_object(INT, AllocKind.STACK, "a")
        b = model.allocate_object(INT, AllocKind.STACK, "b")
        with pytest.raises(UndefinedBehaviour) as exc:
            model.relational("<", a, b)
        assert exc.value.ub is UB.PTR_RELATIONAL_DIFFERENT_PROVENANCE

    def test_diff_same_object(self, model, array):
        hi = model.array_shift(array, INT, 3)
        assert model.diff(hi, array, INT) == 3
        assert model.diff(array, hi, INT) == -3

    def test_diff_different_provenance_ub(self, model):
        a = model.allocate_object(INT, AllocKind.STACK, "a")
        b = model.allocate_object(INT, AllocKind.STACK, "b")
        with pytest.raises(UndefinedBehaviour) as exc:
            model.diff(a, b, INT)
        assert exc.value.ub is UB.PTR_DIFF_DIFFERENT_PROVENANCE

    def test_hardware_skips_provenance(self, hw_model):
        a = hw_model.allocate_object(INT, AllocKind.STACK, "a")
        b = hw_model.allocate_object(INT, AllocKind.STACK, "b")
        assert hw_model.relational("<", b, a)  # stack grows down
        assert hw_model.diff(a, b, UCHAR) == a.address - b.address


class TestPtrIntCasts:
    def test_to_intptr_carries_capability(self, model, array):
        ival = model.ptr_to_int(array, IKind.INTPTR)
        assert ival.cap is not None
        assert ival.cap.equal_exact(array.cap)
        assert ival.value() == array.address

    def test_to_intptr_exposes(self, model, array):
        assert not model.allocation_of(array).exposed
        model.ptr_to_int(array, IKind.INTPTR)
        assert model.allocation_of(array).exposed

    def test_to_plain_int_truncates(self, model, array):
        ival = model.ptr_to_int(array, IKind.UINT)
        assert ival.cap is None
        assert ival.value() == array.address & 0xFFFFFFFF

    def test_roundtrip_keeps_provenance_and_cap(self, model, array):
        ival = model.ptr_to_int(array, IKind.UINTPTR)
        back = model.int_to_ptr(ival, INT)
        assert back.cap.equal_exact(array.cap)
        assert back.prov == array.prov
        model.load(INT, model.array_shift(back, INT, 0))  # no exception?

    def test_zero_int_gives_null(self, model):
        p = model.int_to_ptr(IntegerValue.of_int(0), VOID)
        assert p.is_null()

    def test_plain_int_unexposed_empty_provenance(self, model, array):
        p = model.int_to_ptr(IntegerValue.of_int(array.address), INT)
        assert p.prov.is_empty
        assert not p.cap.tag

    def test_plain_int_exposed_gets_provenance(self, model, array):
        model.ptr_to_int(array, IKind.PTRADDR)   # exposes
        p = model.int_to_ptr(IntegerValue.of_int(array.address), INT)
        assert p.prov == array.prov
        assert not p.cap.tag                     # but never authority


class TestUDI:
    """User-disambiguation: boundary integers between exposed allocations."""

    def _adjacent_globals(self, model):
        a = model.allocate_object(ArrayT(elem=UCHAR, length=16),
                                  AllocKind.GLOBAL, "a", align=16)
        b = model.allocate_object(ArrayT(elem=UCHAR, length=16),
                                  AllocKind.GLOBAL, "b", align=16)
        if a.address + 16 != b.address:
            pytest.skip("allocator did not place the globals adjacently")
        model.ptr_to_int(a, IKind.PTRADDR)
        model.ptr_to_int(b, IKind.PTRADDR)
        return a, b

    def test_boundary_integer_is_symbolic(self, model):
        a, b = self._adjacent_globals(model)
        p = model.int_to_ptr(IntegerValue.of_int(b.address), UCHAR)
        assert p.prov.is_symbolic

    def test_symbolic_resolves_on_access(self, model):
        a, b = self._adjacent_globals(model)
        p = model.int_to_ptr(IntegerValue.of_int(b.address), UCHAR)
        p = p.with_cap(b.cap.with_address(b.address))  # give it authority
        model.load(UCHAR, p)   # resolves to b (footprint check)
        cands = model.state.iota_candidates(p.prov.ident)
        assert cands == (b.prov.ident,)

    def test_symbolic_resolves_by_arithmetic(self, model):
        a, b = self._adjacent_globals(model)
        p = model.int_to_ptr(IntegerValue.of_int(b.address), UCHAR)
        # Shifting down into a's footprint is only valid for a.
        down = model.array_shift(p, UCHAR, -2)
        assert down.address == a.address + 14
