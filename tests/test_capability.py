"""Abstract capabilities: construction, movement, monotonicity,
sealing, and representation round trips (S2.1, S4.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.capability import CHERIOT, MORELLO
from repro.capability.ghost import GhostState
from repro.capability.otype import OType
from repro.capability.permissions import Permission, PermissionSet

ARCHS = [MORELLO, CHERIOT]
ARCH_IDS = [a.name for a in ARCHS]


class TestArchitecture:
    def test_morello_is_128_bit(self):
        assert MORELLO.capability_size == 16
        assert MORELLO.address_width == 64
        assert MORELLO.ptraddr_size == 8
        assert len(MORELLO.perm_order) == 18
        assert MORELLO.otype_width == 15

    def test_cheriot_is_64_bit(self):
        assert CHERIOT.capability_size == 8
        assert CHERIOT.address_width == 32
        assert CHERIOT.ptraddr_size == 4

    @pytest.mark.parametrize("arch", ARCHS, ids=ARCH_IDS)
    def test_root_capability(self, arch):
        root = arch.root_capability()
        assert root.tag
        assert root.base == 0
        assert root.top == 1 << arch.address_width
        assert not root.is_sealed
        assert root.perms == arch.root_permissions()

    @pytest.mark.parametrize("arch", ARCHS, ids=ARCH_IDS)
    def test_null_capability(self, arch):
        null = arch.null_capability()
        assert not null.tag
        assert null.is_null()
        assert null.is_null_derived
        assert len(null.perms) == 0

    def test_null_with_address_is_derived_not_null(self):
        c = MORELLO.null_capability(0x1234)
        assert c.is_null_derived
        assert not c.is_null()
        assert c.address == 0x1234

    def test_portable_representable_envelope(self):
        # [45 S4.3.5]: >= 1KiB below and >= 2KiB above for small objects.
        lo, hi = MORELLO.portable_representable_limits(0x10000, 64)
        assert lo == 0x10000 - 1024
        assert hi == 0x10000 + 64 + 2048
        # And fractions of the object size for large ones.
        size = 1 << 20
        lo, hi = MORELLO.portable_representable_limits(1 << 30, size)
        assert lo == (1 << 30) - size // 8
        assert hi == (1 << 30) + size + size // 4


class TestAddressMovement:
    def setup_method(self):
        root = MORELLO.root_capability()
        self.cap, exact = root.set_bounds(0x1000, 64)
        assert exact and self.cap.tag

    def test_in_bounds_move_keeps_tag(self):
        moved = self.cap.with_address(0x1020)
        assert moved.tag
        assert moved.address == 0x1020
        assert (moved.base, moved.top) == (0x1000, 0x1040)

    def test_same_address_is_noop(self):
        assert self.cap.with_address(0x1000) is self.cap
        assert self.cap.with_address_ghost(0x1000) is self.cap

    def test_far_move_clears_tag_hardware(self):
        far = self.cap.with_address(0x1000 + (1 << 30))
        assert not far.tag
        assert far.address == 0x1000 + (1 << 30)

    def test_far_move_sets_ghost_abstract(self):
        far = self.cap.with_address_ghost(0x1000 + (1 << 30))
        assert far.tag                      # tag itself is kept...
        assert far.ghost.tag_unspecified    # ...but is now unspecified
        assert far.ghost.bounds_unspecified

    def test_ghost_is_sticky_coming_back(self):
        far = self.cap.with_address_ghost(0x1000 + (1 << 30))
        back = far.with_address_ghost(0x1004)
        assert back.ghost.tag_unspecified

    def test_moving_sealed_detags(self):
        sealed = self.cap.sealed_with(OType.sentry())
        moved = sealed.with_address(0x1010)
        assert not moved.tag


class TestSetBounds:
    def setup_method(self):
        self.root = MORELLO.root_capability()

    def test_narrowing_keeps_tag(self):
        cap, exact = self.root.set_bounds(0x2000, 100)
        assert cap.tag and exact
        assert (cap.base, cap.top) == (0x2000, 0x2064)

    def test_widening_clears_tag(self):
        narrow, _ = self.root.set_bounds(0x2000, 16)
        wide, _ = narrow.set_bounds(0x2000, 64)
        assert not wide.tag

    def test_widening_below_clears_tag(self):
        narrow, _ = self.root.set_bounds(0x2000, 16)
        below, _ = narrow.set_bounds(0x1ff0, 16)
        assert not below.tag

    def test_inexact_large_request(self):
        cap, exact = self.root.set_bounds(0x3, (1 << 20) + 1)
        assert not exact
        assert cap.base <= 0x3
        assert cap.top >= 0x3 + (1 << 20) + 1

    def test_sealed_set_bounds_detags(self):
        sealed = self.root.sealed_with(OType.sentry())
        cap, _ = sealed.set_bounds(0x1000, 8)
        assert not cap.tag


class TestSealing:
    def test_seal_unseal_roundtrip(self):
        cap = MORELLO.root_capability()
        sealed = cap.sealed_with(OType.user(3))
        assert sealed.is_sealed
        assert sealed.otype.value == OType.FIRST_USER + 3
        unsealed = sealed.unsealed()
        assert not unsealed.is_sealed

    def test_double_seal_detags(self):
        cap = MORELLO.root_capability().sealed_with(OType.sentry())
        again = cap.sealed_with(OType.user(1))
        assert not again.tag


class TestEncodingRoundTrip:
    @pytest.mark.parametrize("arch", ARCHS, ids=ARCH_IDS)
    def test_encode_length(self, arch):
        data = arch.encode(arch.root_capability())
        assert len(data) == arch.capability_size

    @pytest.mark.parametrize("arch", ARCHS, ids=ARCH_IDS)
    def test_decode_rejects_wrong_length(self, arch):
        with pytest.raises(ValueError):
            arch.decode(b"\x00", tag=False)

    @pytest.mark.parametrize("arch", ARCHS, ids=ARCH_IDS)
    @given(data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_random_caps(self, arch, data):
        max_addr = (1 << arch.address_width) - 1
        length = data.draw(st.integers(0, max_addr // 2))
        base = data.draw(st.integers(0, max_addr - length))
        perms = PermissionSet.from_iterable(data.draw(
            st.frozensets(st.sampled_from(list(arch.perm_order)))))
        otype = OType(data.draw(st.integers(
            0, (1 << arch.otype_width) - 1)))
        tag = data.draw(st.booleans())

        cap, _ = arch.root_capability().set_bounds(base, length)
        cap = cap.with_perms_masked(perms)
        from dataclasses import replace
        cap = replace(cap, otype=otype, tag=tag)
        back = arch.decode(arch.encode(cap), tag=cap.tag)
        assert back.equal_exact(cap)
        assert back.address == cap.address
        assert back.perms == cap.perms.intersect(
            PermissionSet.from_iterable(arch.perm_order))
        assert back.otype == cap.otype

    @pytest.mark.parametrize("arch", ARCHS, ids=ARCH_IDS)
    @given(raw=st.binary(min_size=8, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_every_bit_pattern_decodes(self, arch, raw):
        """No trap representations in the byte layout: any bytes decode."""
        data = (raw * 2)[: arch.capability_size]
        cap = arch.decode(data, tag=False)
        assert 0 <= cap.address < (1 << arch.address_width)
        assert arch.encode(cap) == data


class TestEqualExact:
    def test_differs_on_tag(self):
        a = MORELLO.root_capability()
        assert not a.equal_exact(a.with_tag(False))

    def test_differs_on_perms(self):
        a = MORELLO.root_capability()
        b = a.without_perms(Permission.LOAD)
        assert not a.equal_exact(b)

    def test_same_capability(self):
        a, _ = MORELLO.root_capability().set_bounds(0x4000, 32)
        b, _ = MORELLO.root_capability().set_bounds(0x4000, 32)
        assert a.equal_exact(b)

    def test_ghost_does_not_affect_representation(self):
        a = MORELLO.root_capability()
        b = a.with_ghost(GhostState(True, True))
        # equal_exact at the architectural layer ignores ghost (the
        # unspecified-result rule lives in the intrinsics layer).
        assert a.equal_exact(b)


class TestGhostLaws:
    """Ghost-state laws over random address-walk sequences."""

    @given(data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_ghost_only_grows_and_address_is_exact(self, data):
        cap, _ = MORELLO.root_capability().set_bounds(0x10000, 256)
        had_ghost = False
        for _ in range(data.draw(st.integers(1, 12))):
            target = data.draw(st.integers(0, (1 << 48)))
            cap = cap.with_address_ghost(target)
            assert cap.address == target          # S3.3: value exact
            if had_ghost:
                assert cap.ghost.tag_unspecified  # stickiness
            had_ghost = had_ghost or cap.ghost.tag_unspecified

    @given(data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_hardware_tag_never_returns(self, data):
        cap, _ = MORELLO.root_capability().set_bounds(0x10000, 256)
        lost = False
        for _ in range(data.draw(st.integers(1, 12))):
            target = data.draw(st.integers(0, (1 << 48)))
            cap = cap.with_address(target)
            if lost:
                assert not cap.tag                # monotone loss
            lost = lost or not cap.tag

    @given(data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_ghost_and_hardware_agree_on_when(self, data):
        """The abstract machine marks ghost exactly when hardware would
        clear the tag (first divergence point)."""
        cap, _ = MORELLO.root_capability().set_bounds(0x10000, 256)
        hw = cap
        for _ in range(data.draw(st.integers(1, 8))):
            target = data.draw(st.integers(0, (1 << 44)))
            prev_ghost = cap.ghost.tag_unspecified
            cap = cap.with_address_ghost(target)
            hw_ok_before = hw.tag
            hw = hw.with_address(target)
            if not prev_ghost and hw_ok_before:
                # First-divergence step: ghost fires iff hardware detags.
                assert cap.ghost.tag_unspecified == (not hw.tag)
