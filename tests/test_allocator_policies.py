"""The allocator-policy axis (ISSUE 10): behaviour, determinism, grid.

Three layers of pinning:

* unit tests on the policy objects themselves (bump never reuses,
  freelist recycles LIFO within a size class, quarantine graduates
  FIFO after :data:`~repro.memory.allocator.QUARANTINE_CAPACITY`
  younger frees, snapshots round-trip);
* end-to-end C programs whose exit status *is* the policy (the
  uintptr_t reuse probe), plus oracle attribution: a bump-vs-freelist
  divergence classifies as ``allocator-policy``, and a divergence the
  bump-policy matched reference already reproduces refines to
  ``address-map``;
* the committed allocator-grid golden (2 archs x 3 policies over the
  heap-flavoured S5 subset) and determinism properties: serial ==
  ``--jobs 4`` and stable across all three evaluators, with the bump
  grid byte-identical to the pre-policy S5 compliance golden.
"""

from __future__ import annotations

import pathlib
from types import SimpleNamespace

import pytest

from repro.capability.morello import MORELLO
from repro.core.coreeval import default_evaluator, set_default_evaluator
from repro.errors import MemoryModelError, OutcomeKind
from repro.fuzz import run_fuzz
from repro.fuzz.oracle import (
    FUZZ_TARGETS, Cause, allocator_fuzz_targets, evaluate_program,
)
from repro.impls import ALL_IMPLEMENTATIONS, by_name, with_allocator
from repro.impls.registry import (
    CERBERUS, CERBERUS_MAP, CHERIOT_HARDWARE,
)
from repro.memory.allocation import AllocKind
from repro.memory.allocator import (
    ALLOCATOR_POLICIES, QUARANTINE_CAPACITY, make_allocator,
)
from repro.obs.events import EventBus
from repro.reporting.tables import render_compliance, render_fuzz_summary
from repro.testsuite.compare import compare_implementations
from repro.testsuite.suite import all_cases

GOLDEN = pathlib.Path(__file__).parent / "golden"


@pytest.fixture(autouse=True)
def _restore_default_evaluator():
    # run_fuzz(evaluator=...) installs its choice as the process
    # default; put it back so later modules see the real default.
    before = default_evaluator()
    yield
    set_default_evaluator(before)

# The same-size reuse probe (also a guided-fuzz template): exit status
# 1 iff the allocator returned the freed address for the next
# same-size malloc.  No dangling dereference -- pure address identity.
REUSE_PROBE = """
#include <stdlib.h>
#include <stdint.h>
int main(void) {
  int *r = (int *)malloc(8 * sizeof(int));
  uintptr_t r1 = (uintptr_t)r;
  free(r);
  int *r2 = (int *)malloc(8 * sizeof(int));
  int same = (int)(r1 == (uintptr_t)r2);
  free(r2);
  return same;
}
"""

# Quarantine churn: after freeing p and five younger blocks, the two
# oldest entries (p, t1) have graduated; LIFO free-list reuse hands the
# next malloc t1's footprint.  Exit 1 under quarantine only: freelist
# reuses t5 (youngest), bump reuses nothing.
QUARANTINE_CHURN = """
#include <stdlib.h>
#include <stdint.h>
int main(void) {
  int *p = (int *)malloc(8 * sizeof(int));
  int *t1 = (int *)malloc(8 * sizeof(int));
  int *t2 = (int *)malloc(8 * sizeof(int));
  int *t3 = (int *)malloc(8 * sizeof(int));
  int *t4 = (int *)malloc(8 * sizeof(int));
  int *t5 = (int *)malloc(8 * sizeof(int));
  uintptr_t a1 = (uintptr_t)t1;
  free(p); free(t1); free(t2); free(t3); free(t4); free(t5);
  int *q = (int *)malloc(8 * sizeof(int));
  return (int)((uintptr_t)q == a1);
}
"""

# Output depends on the heap *address range*, not on reuse: the policy
# refinement must attribute divergences on this program to address-map.
MAP_PROBE = """
#include <stdlib.h>
#include <stdint.h>
int main(void) {
  int *p = (int *)malloc(8);
  int r = (int)(((uintptr_t)p >> 28) & 0xff);
  free(p);
  return r;
}
"""


def fresh(policy: str):
    return make_allocator(policy, CERBERUS_MAP, MORELLO.compression)


def heap(alloc, size: int = 32, align: int = 8):
    return alloc.allocate(AllocKind.HEAP, size, align)


def footprint(base: int, padded: int):
    """The slice of an Allocation that release() reads."""
    return SimpleNamespace(cap_base=base, cap_size=padded)


# -- the policy objects -----------------------------------------------------

def test_registry_names_the_three_policies():
    assert set(ALLOCATOR_POLICIES) == {"bump", "freelist", "quarantine"}
    for name, cls in ALLOCATOR_POLICIES.items():
        assert cls.policy == name


def test_make_allocator_rejects_unknown_policy():
    with pytest.raises(MemoryModelError, match="unknown allocator policy"):
        make_allocator("tcache", CERBERUS_MAP, MORELLO.compression)


def test_bump_never_reuses_released_regions():
    alloc = fresh("bump")
    base, padded = heap(alloc)
    alloc.release(footprint(base, padded))
    again, _ = heap(alloc)
    assert again != base


def test_freelist_reuses_lifo_within_a_size_class():
    alloc = fresh("freelist")
    b0, s0 = heap(alloc)
    b1, s1 = heap(alloc)
    assert b0 != b1
    alloc.release(footprint(b0, s0))
    alloc.release(footprint(b1, s1))
    assert heap(alloc)[0] == b1          # most recently freed first
    assert heap(alloc)[0] == b0
    assert heap(alloc)[0] not in (b0, b1)   # pool drained: bump placement


def test_freelist_size_classes_do_not_cross():
    alloc = fresh("freelist")
    base, padded = heap(alloc, size=32)
    alloc.release(footprint(base, padded))
    other, _ = heap(alloc, size=64)
    assert other != base


def test_quarantine_delays_reuse_until_capacity_exceeded():
    alloc = fresh("quarantine")
    blocks = [heap(alloc) for _ in range(QUARANTINE_CAPACITY + 2)]
    for base, padded in blocks[:QUARANTINE_CAPACITY]:
        alloc.release(footprint(base, padded))
    held, _ = heap(alloc)                  # quarantine full, nothing out
    assert held not in [b for b, _ in blocks]
    base4, padded4 = blocks[QUARANTINE_CAPACITY]
    alloc.release(footprint(base4, padded4))   # fifth free: oldest leaves
    assert heap(alloc)[0] == blocks[0][0]


def test_freelist_snapshot_restores_the_reuse_pool():
    alloc = fresh("freelist")
    base, padded = heap(alloc)
    snap = alloc.snapshot()                # pool empty at this point
    alloc.release(footprint(base, padded))
    alloc.restore(snap)
    assert heap(alloc)[0] != base


def test_quarantine_snapshot_roundtrip_is_deep():
    alloc = fresh("quarantine")
    for _ in range(3):
        base, padded = heap(alloc)
        alloc.release(footprint(base, padded))
    snap = alloc.snapshot()
    extra, size = heap(alloc)
    alloc.release(footprint(extra, size))  # mutates quarantine post-snap
    alloc.restore(snap)
    assert alloc.snapshot() == snap


# -- end-to-end: exit status is the policy ----------------------------------

def exit_status(impl, source: str) -> int:
    out = impl.run(source)
    assert out.kind is OutcomeKind.EXIT, out
    return out.exit_status


@pytest.mark.parametrize("name,expected", [
    ("cerberus", 0),
    ("cerberus-freelist", 1),
    ("clang-morello-O0-freelist", 1),
    ("clang-riscv-O3-freelist", 1),
])
def test_reuse_probe_distinguishes_bump_from_freelist(name, expected):
    assert exit_status(by_name(name), REUSE_PROBE) == expected


def test_quarantine_holds_the_immediately_refreed_address():
    assert exit_status(by_name("cheriot-O0-quarantine"), REUSE_PROBE) == 0


def test_quarantine_churn_graduates_fifo_reuses_lifo():
    assert exit_status(by_name("cheriot-O0-quarantine"),
                       QUARANTINE_CHURN) == 1
    # The distinguisher is three-way: freelist hands back the youngest
    # free (t5), bump hands back nothing -- both exit 0.
    assert exit_status(with_allocator(CHERIOT_HARDWARE, "freelist"),
                       QUARANTINE_CHURN) == 0
    assert exit_status(CHERIOT_HARDWARE, QUARANTINE_CHURN) == 0


def test_region_reuse_event_carries_the_policy():
    bus = EventBus()
    seen = []
    bus.subscribe(lambda e: seen.append(e) if e.kind == "region.reuse"
                  else None)
    by_name("cerberus-freelist").run(REUSE_PROBE, bus=bus)
    assert seen, "freelist reuse emitted no region.reuse event"
    event = seen[0]
    assert event.data["policy"] == "freelist"
    assert event.data["padded_size"] >= 8 * 4
    assert event.data["region"] == "heap"


def test_region_quarantine_events_report_depth():
    bus = EventBus()
    depths = []
    bus.subscribe(lambda e: depths.append(e.data["depth"])
                  if e.kind == "region.quarantine" else None)
    by_name("cheriot-O0-quarantine").run(QUARANTINE_CHURN, bus=bus)
    assert len(depths) == 6                   # one per free
    assert max(depths) == QUARANTINE_CAPACITY + 1


# -- oracle attribution -----------------------------------------------------

def test_oracle_attributes_reuse_divergence_to_allocator_policy():
    targets = allocator_fuzz_targets("freelist")
    assert [t.impl.name for t in targets] == [
        "cerberus-freelist", "clang-morello-O0-freelist",
        "clang-riscv-O3-freelist"]
    verdict = evaluate_program(REUSE_PROBE, FUZZ_TARGETS + targets)
    assert verdict.clean                      # every divergence explained
    policy_divs = [d for d in verdict.divergences
                   if d.impl_name.endswith("-freelist")]
    assert len(policy_divs) == 3
    assert {d.cause for d in policy_divs} == {Cause.ALLOCATOR_POLICY}


def test_oracle_refines_map_dependent_divergence_to_address_map():
    """The bump-policy matched reference reproduces MAP_PROBE's output,
    so heap reuse is irrelevant: attribute to the address map."""
    verdict = evaluate_program(MAP_PROBE, allocator_fuzz_targets("freelist"))
    assert verdict.clean
    causes = {d.impl_name: d.cause for d in verdict.divergences}
    # cerberus-freelist shares the reference's map: no divergence at all.
    assert "cerberus-freelist" not in causes
    assert causes["clang-morello-O0-freelist"] is Cause.ADDRESS_MAP
    assert causes["clang-riscv-O3-freelist"] is Cause.ADDRESS_MAP


# -- determinism properties -------------------------------------------------

def policy_campaign(jobs: int, evaluator: str | None = None) -> str:
    report = run_fuzz(seed=11, iterations=20, jobs=jobs,
                      targets=FUZZ_TARGETS
                      + allocator_fuzz_targets("freelist"),
                      heap_reuse=True, evaluator=evaluator)
    report.elapsed = 0.0
    return render_fuzz_summary(report)


def test_policy_campaign_serial_equals_parallel():
    assert policy_campaign(jobs=1) == policy_campaign(jobs=4)


@pytest.mark.parametrize("evaluator", ["ast", "core"])
def test_policy_campaign_stable_across_evaluators(evaluator):
    assert policy_campaign(jobs=1, evaluator="compiled") \
        == policy_campaign(jobs=1, evaluator=evaluator)


def test_same_configuration_yields_identical_address_streams():
    impl = by_name("cerberus-freelist")
    first = impl.run(QUARANTINE_CHURN)
    second = impl.run(QUARANTINE_CHURN)
    assert (first.kind, first.exit_status, first.stdout) \
        == (second.kind, second.exit_status, second.stdout)


# -- the grid goldens -------------------------------------------------------

#: The heap-flavoured S5 subset the CI smoke grid runs (allocation,
#: bounds padding, and temporal-safety cases).
SMOKE_CASE_NAMES = (
    "align-malloc-result",
    "alloc-local-exact-bounds",
    "alloc-malloc-bounds-cover-request",
    "alloc-heap-disjoint",
    "alloc-global-array-bounds",
    "alloc-large-padded-representable",
    "temporal-use-after-free",
    "temporal-write-after-free",
    "temporal-double-free",
    "stdlib-realloc-moves-capabilities",
    # The one S5 case whose *claim* is policy-dependent: a dangling
    # pointer and the next same-size malloc compare equal exactly when
    # the allocator reuses the address, so the committed grid golden
    # shows it failing under freelist and passing under bump/quarantine.
    "eq-same-address-different-provenance",
)

#: One implementation per capability format: the Morello-format
#: abstract reference and the CHERIoT-format hardware machine.
GRID_BASES = (CERBERUS, CHERIOT_HARDWARE)


def smoke_cases():
    cases = tuple(c for c in all_cases() if c.name in SMOKE_CASE_NAMES)
    assert len(cases) == len(SMOKE_CASE_NAMES)
    return cases


def regenerate_allocator_grid() -> str:
    """The committed allocator-grid artefact: 2 archs x 3 policies over
    the heap-flavoured subset.  Refresh deliberately:

        python -c "from tests.test_allocator_policies import \\
            regenerate_allocator_grid; \\
            print(regenerate_allocator_grid(), end='')" \\
            > tests/golden/allocator_grid.txt
    """
    cases = smoke_cases()
    blocks = []
    for policy in sorted(ALLOCATOR_POLICIES):
        grid = tuple(with_allocator(base, policy) for base in GRID_BASES)
        reports = compare_implementations(grid, cases)
        blocks.append(f"== allocator {policy} ==\n"
                      + render_compliance(reports))
    return "\n".join(blocks)


def test_allocator_grid_is_stable():
    assert regenerate_allocator_grid() \
        == (GOLDEN / "allocator_grid.txt").read_text()


def test_bump_grid_matches_the_pre_policy_compliance_golden():
    """--allocator bump is the identity: the full S5 report under an
    explicit bump override is byte-identical to the committed golden
    produced before the policy axis existed."""
    grid = tuple(with_allocator(impl, "bump")
                 for impl in ALL_IMPLEMENTATIONS)
    assert grid == ALL_IMPLEMENTATIONS      # identity, not a copy
    rendered = render_compliance(compare_implementations(grid))
    assert rendered == (GOLDEN / "compliance.txt").read_text()
