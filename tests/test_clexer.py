"""The lexer and its mini-preprocessor."""

import pytest

from repro.core.clexer import Lexer, tokenize
from repro.errors import CSyntaxError


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src) if t.kind != "eof"]


class TestBasics:
    def test_identifiers_and_keywords(self):
        toks = kinds("int foo _bar2")
        assert toks == [("kw", "int"), ("id", "foo"), ("id", "_bar2")]

    def test_punctuators_maximal_munch(self):
        toks = [t.text for t in tokenize("a->b <<= c >> 1") if t.kind == "punct"]
        assert toks == ["->", "<<=", ">>"]

    def test_ellipsis(self):
        assert ("punct", "...") in kinds("f(int, ...)")

    def test_comments_skipped(self):
        toks = kinds("a /* x */ b // y\n c")
        assert [t for _, t in toks] == ["a", "b", "c"]

    def test_unterminated_comment(self):
        with pytest.raises(CSyntaxError):
            tokenize("/* never ends")

    def test_line_numbers(self):
        toks = tokenize("a\nb\n  c")
        assert [t.line for t in toks[:3]] == [1, 2, 3]
        assert toks[2].col == 3


class TestNumbers:
    def test_decimal(self):
        t = tokenize("42")[0]
        assert t.kind == "num" and t.value == 42 and t.base == 10

    def test_hex(self):
        t = tokenize("0xfffe")[0]
        assert t.value == 0xFFFE and t.base == 16

    def test_octal(self):
        t = tokenize("0755")[0]
        assert t.value == 0o755 and t.base == 8

    def test_suffixes(self):
        t = tokenize("100001ul")[0]
        assert t.suffix == "ul"
        t = tokenize("5LL")[0]
        assert t.suffix == "ll"

    def test_float_rejected(self):
        with pytest.raises(CSyntaxError):
            tokenize("1.5")


class TestCharsAndStrings:
    def test_char_constant(self):
        assert tokenize("'h'")[0].value == ord("h")

    def test_escapes(self):
        assert tokenize(r"'\n'")[0].value == 10
        assert tokenize(r"'\0'")[0].value == 0
        assert tokenize(r"'\x41'")[0].value == 0x41

    def test_string(self):
        t = tokenize('"hi\\n"')[0]
        assert t.kind == "str" and t.value == "hi\n"

    def test_adjacent_strings_merge(self):
        t = tokenize('"a" "b"')[0]
        assert t.value == "ab"

    def test_unterminated_string(self):
        with pytest.raises(CSyntaxError):
            tokenize('"oops')


class TestPreprocessor:
    def test_include_skipped(self):
        assert kinds("#include <stdint.h>\nint") == [("kw", "int")]

    def test_define_object_macro(self):
        toks = kinds("#define N 42\nint x = N;")
        assert ("num", "42") in toks

    def test_macro_multi_token(self):
        toks = kinds("#define EXPR (1 + 2)\nEXPR")
        assert [t for _, t in toks] == ["(", "1", "+", "2", ")"]

    def test_nested_macros(self):
        toks = kinds("#define A B\n#define B 7\nA")
        assert toks == [("num", "7")]

    def test_self_referential_macro_terminates(self):
        toks = kinds("#define X X\nX")
        assert toks == [("id", "X")]

    def test_function_like_macro_rejected(self):
        with pytest.raises(CSyntaxError):
            tokenize("#define F(x) x\n")

    def test_unknown_directive_rejected(self):
        with pytest.raises(CSyntaxError):
            tokenize("#if 1\n#endif\n")

    def test_pragma_skipped(self):
        assert kinds("#pragma once\nint") == [("kw", "int")]


class TestLexerRobustness:
    """Random byte soup must produce tokens or CSyntaxError, not crash."""

    def test_random_printable_soup(self):
        import random
        import string
        rng = random.Random(17)
        alphabet = string.ascii_letters + string.digits + \
            "+-*/%&|^~!<>=?:;,.()[]{}#\"' \n\t_"
        for _ in range(300):
            soup = "".join(rng.choice(alphabet)
                           for _ in range(rng.randint(1, 120)))
            try:
                tokenize(soup)
            except CSyntaxError:
                pass

    def test_parser_survives_token_soup(self):
        import random
        import string
        from repro.capability import MORELLO
        from repro.core.cparser import parse_program
        from repro.ctypes import TargetLayout
        from repro.errors import CTypeError
        layout = TargetLayout(MORELLO)
        rng = random.Random(23)
        words = ["int", "char", "*", "x", "y", "(", ")", "{", "}", ";",
                 "=", "1", "return", "if", "for", "[", "]", "+", ",",
                 "struct", "void", "static", "&", "sizeof", "while"]
        for _ in range(300):
            soup = " ".join(rng.choice(words)
                            for _ in range(rng.randint(1, 60)))
            try:
                parse_program(soup, layout)
            except (CSyntaxError, CTypeError):
                pass
