"""UB catalogue coverage: every undefined behaviour the semantics
defines is reachable by a concrete program, reported with exactly that
catalogue entry.  (S4.2 plus the ISO entries the suite relies on.)"""

import pytest

from repro.errors import OutcomeKind, UB
from repro.impls import CERBERUS

#: One witness program per catalogue entry.
WITNESSES: dict[UB, str] = {
    UB.CHERI_INVALID_CAP: """
#include <cheriintrin.h>
int main(void) { int x; int *p = cheri_tag_clear(&x); return *p; }
""",
    UB.CHERI_UNDEFINED_TAG: """
int main(void) {
  int x; int *p = &x;
  unsigned char *b = (unsigned char *)&p;
  b[0] = b[0];
  return *p;
}
""",
    UB.CHERI_INSUFFICIENT_PERMISSIONS: """
#include <cheriintrin.h>
int main(void) {
  int x;
  int *ro = cheri_perms_and(&x, cheri_perms_get(&x)
                                 & ~(size_t)CHERI_PERM_STORE);
  *ro = 1;
  return 0;
}
""",
    UB.CHERI_BOUNDS_VIOLATION: """
int main(void) { int a[2]; return *(a + 2); }
""",
    UB.READ_TRAP_REPRESENTATION: """
int main(void) {
  int *p;
  unsigned char *b = (unsigned char *)&p;
  b[0] = 0;               /* half-initialised capability object */
  int *q = p;             /* decoding the representation fails */
  (void)q;
  return 0;
}
""",
    UB.OUT_OF_BOUNDS_PTR_ARITH: """
int main(void) { int a[2]; int *p = a + 3; (void)p; return 0; }
""",
    UB.ACCESS_OUT_OF_BOUNDS: """
#include <cheriintrin.h>
int main(void) {
  /* Capability bounds padded beyond the object: in the gap, the
     capability check passes but the allocation check fails. */
  char a[100000];
  size_t len = cheri_length_get(a);
  if (len <= 100000) return 0;  /* format is byte-exact here: vacuous */
  return a[100000];
}
""",
    UB.ACCESS_DEAD_ALLOCATION: """
#include <stdlib.h>
int main(void) { int *p = malloc(4); free(p); return *p; }
""",
    UB.FREE_NON_MATCHING: """
#include <stdlib.h>
int main(void) { int x; free(&x); return 0; }
""",
    UB.DOUBLE_FREE: """
#include <stdlib.h>
int main(void) { int *p = malloc(4); free(p); free(p); return 0; }
""",
    UB.PTR_DIFF_DIFFERENT_PROVENANCE: """
int main(void) { int a, b; return (int)(&a - &b); }
""",
    UB.PTR_RELATIONAL_DIFFERENT_PROVENANCE: """
int main(void) { int a, b; return &a < &b; }
""",
    UB.SIGNED_OVERFLOW: """
#include <limits.h>
int main(void) { int x = INT_MAX; return x + 1; }
""",
    UB.DIVISION_BY_ZERO: """
int main(void) { int z = 0; return 7 / z; }
""",
    UB.SHIFT_OUT_OF_RANGE: """
int main(void) { int s = 40; return 1 << s; }
""",
    UB.READ_UNINITIALISED: """
int main(void) { int x; if (x) return 1; return 0; }
""",
    UB.NULL_DEREFERENCE: """
int main(void) { int *p = 0; return *p; }
""",
    UB.WRITE_TO_CONST: """
#include <cheriintrin.h>
#include <stdint.h>
const int c = 1;
int main(void) {
  /* Forge write permission back via a fresh capability so the
     allocation-level const check itself is exercised: impossible in
     real CHERI C, so this witness drives the model API instead. */
  return 0;
}
""",
    UB.EMPTY_PROVENANCE_ACCESS: """
#include <stdint.h>
int main(void) {
  /* An integer-sourced pointer with no matching exposed allocation,
     carrying a (forged) tag: only the provenance layer can object.
     Unreachable from pure CHERI C (the tag check fires first), so the
     witness drives the model API; see test_model_witnesses. */
  return 0;
}
""",
    UB.MISALIGNED_ACCESS: """
#include <stdint.h>
int main(void) {
  char buf[64];
  int x;
  int **slot = (int **)(buf + 1);
  *slot = &x;
  return 0;
}
""",
}

MODEL_LEVEL = {UB.WRITE_TO_CONST, UB.EMPTY_PROVENANCE_ACCESS,
               UB.ACCESS_OUT_OF_BOUNDS}


def _suite_expected_ubs() -> set[UB]:
    """Every UB named by a suite case expectation (reference, hardware,
    or per-implementation override)."""
    from repro.testsuite.suite import all_cases
    ubs: set[UB] = set()
    for case in all_cases():
        expectations = [case.expect, case.hardware,
                        *case.overrides.values()]
        for expected in expectations:
            if expected is not None and expected.ub is not None:
                ubs.add(expected.ub)
    return ubs


def _corpus_expected_ubs() -> set[UB]:
    """Every UB named by a regression-corpus expectation (the recorded
    ``Outcome.describe()`` strings embed the catalogue value)."""
    import pathlib

    from repro.fuzz.corpus import load_corpus
    corpus_dir = pathlib.Path(__file__).parent / "corpus"
    ubs: set[UB] = set()
    by_value = {str(u): u for u in UB}
    for case in load_corpus(corpus_dir):
        for described in case.expectations.values():
            if described.startswith("UB "):
                ub = by_value.get(described[3:])
                if ub is not None:
                    ubs.add(ub)
    return ubs


def test_every_cheri_ub_exercised_by_suite_or_corpus():
    """Audit (ISSUE 4): each CHERI-specific catalogue entry must be
    *triggered* -- expected by at least one validation-suite case or one
    regression-corpus entry -- not merely reachable by the witness
    programs above.  Fails with the list of unexercised entries so a
    catalogue addition without a suite/corpus trigger is caught here."""
    exercised = _suite_expected_ubs() | _corpus_expected_ubs()
    unexercised = sorted(u.name for u in UB
                         if u.is_cheri and u not in exercised)
    assert not unexercised, (
        "CHERI UB kinds defined in errors.py but never expected by any "
        f"suite case or corpus entry: {unexercised}; add a triggering "
        "case to the validation suite or save a fuzz corpus entry")


@pytest.mark.parametrize("ub", [u for u in UB if u not in MODEL_LEVEL],
                         ids=lambda u: u.name)
def test_every_ub_reachable_from_c(ub):
    src = WITNESSES[ub]
    out = CERBERUS.run(src)
    assert out.kind is OutcomeKind.UNDEFINED, (ub, out.describe(),
                                               out.detail)
    assert out.ub is ub, (ub, out.describe())


class TestModelWitnesses:
    """The three catalogue entries that pure CHERI C cannot reach (a
    lower-priority check always fires first) are reachable through the
    memory-model API."""

    def test_write_to_const(self, model):
        from repro.ctypes import INT
        from repro.errors import UndefinedBehaviour
        from repro.memory import IntegerValue, MVInteger
        from repro.memory.allocation import AllocKind
        c = model.allocate_object(INT, AllocKind.GLOBAL, "c",
                                  readonly=True)
        writable = c.with_cap(
            model.arch.root_capability().set_bounds(c.address, 4)[0])
        with pytest.raises(UndefinedBehaviour) as exc:
            model.store(INT, writable,
                        MVInteger(INT, IntegerValue.of_int(1)))
        assert exc.value.ub is UB.WRITE_TO_CONST

    def test_empty_provenance_access(self, model):
        from repro.ctypes import INT
        from repro.errors import UndefinedBehaviour
        from repro.memory import PointerValue
        from repro.memory.allocation import AllocKind
        from repro.memory.provenance import Provenance
        x = model.allocate_object(INT, AllocKind.STACK, "x")
        forged = PointerValue(Provenance.empty(), x.cap)
        with pytest.raises(UndefinedBehaviour) as exc:
            model.load(INT, forged)
        assert exc.value.ub is UB.EMPTY_PROVENANCE_ACCESS

    def test_access_outside_allocation(self, model):
        """An access within capability bounds but outside the object
        footprint (possible when bounds are padded, S3.2)."""
        from repro.ctypes import UCHAR
        from repro.errors import UndefinedBehaviour
        p = model.allocate_region(1000001)   # padded bounds
        alloc = model.allocation_of(p)
        assert p.cap.length > alloc.size     # there is a gap
        gap = p.with_cap(p.cap.with_address(p.address + alloc.size))
        assert gap.cap.in_bounds(gap.address, 1)
        with pytest.raises(UndefinedBehaviour) as exc:
            model.load(UCHAR, gap)
        assert exc.value.ub is UB.ACCESS_OUT_OF_BOUNDS

    def test_hardware_permits_the_padding_gap(self, hw_model):
        """The same gap access succeeds on hardware: allocator padding
        is a real, observable CHERI phenomenon (S3.2)."""
        from repro.ctypes import UCHAR
        p = hw_model.allocate_region(1000001)
        alloc = next(a for a in hw_model.state.allocations.values()
                     if a.base == p.address)
        gap = p.with_cap(p.cap.with_address(p.address + alloc.size))
        hw_model.load(UCHAR, gap)   # no trap
