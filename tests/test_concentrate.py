"""CHERI Concentrate compression: unit + property tests.

These are the load-bearing invariants of the whole semantics: if
encode/decode/representability are wrong, every bounds check is wrong.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.capability.cheriot import CHERIOT_COMPRESSION
from repro.capability.concentrate import CompressedBounds, CompressionParams
from repro.capability.morello import MORELLO_COMPRESSION

PARAMS = [MORELLO_COMPRESSION, CHERIOT_COMPRESSION]


def ids(params_list):
    return [p.name for p in params_list]


# ---------------------------------------------------------------------------
# Unit tests
# ---------------------------------------------------------------------------


class TestParams:
    def test_morello_widths(self):
        p = MORELLO_COMPRESSION
        assert p.address_width == 64
        assert p.mantissa_width == 16
        assert p.top_width == 14
        assert p.exponent_width == 6
        assert p.reset_exponent == 50

    def test_cheriot_byte_granularity_to_511(self):
        assert CHERIOT_COMPRESSION.max_exact_length == 511

    def test_rejects_narrow_mantissa(self):
        with pytest.raises(ValueError):
            CompressionParams("bad", 64, 4)

    def test_rejects_mantissa_wider_than_address(self):
        with pytest.raises(ValueError):
            CompressionParams("bad", 8, 16)


class TestEncodeDecode:
    @pytest.mark.parametrize("params", PARAMS, ids=ids(PARAMS))
    def test_zero_length(self, params):
        bounds, exact = CompressedBounds.encode(params, 0x100, 0)
        assert exact
        d = bounds.decode(0x100)
        assert d.base == 0x100
        assert d.top == 0x100

    @pytest.mark.parametrize("params", PARAMS, ids=ids(PARAMS))
    def test_small_exact(self, params):
        for length in (1, 2, 3, 8, 100, params.max_exact_length):
            bounds, exact = CompressedBounds.encode(params, 0x1234, length)
            assert exact, length
            d = bounds.decode(0x1234)
            assert (d.base, d.top) == (0x1234, 0x1234 + length)

    @pytest.mark.parametrize("params", PARAMS, ids=ids(PARAMS))
    def test_maximal_capability(self, params):
        bounds = CompressedBounds.maximal(params)
        d = bounds.decode(0)
        assert d.base == 0
        assert d.top == 1 << params.address_width

    def test_large_unaligned_rounds_outward(self):
        p = MORELLO_COMPRESSION
        base, length = 0x100001, 1 << 20
        bounds, exact = CompressedBounds.encode(p, base, length)
        assert not exact
        d = bounds.decode(base)
        assert d.base <= base
        assert d.top >= base + length

    def test_field_range_validation(self):
        p = MORELLO_COMPRESSION
        with pytest.raises(ValueError):
            CompressedBounds(p, 1 << p.mantissa_width, 0, False)
        with pytest.raises(ValueError):
            CompressedBounds(p, 0, 1 << p.top_width, False)

    def test_encode_rejects_bad_regions(self):
        p = MORELLO_COMPRESSION
        with pytest.raises(ValueError):
            CompressedBounds.encode(p, 0, -1)
        with pytest.raises(ValueError):
            CompressedBounds.encode(p, (1 << 64) - 4, 8)


class TestRepresentability:
    def test_window_contains_bounds_for_small_object(self):
        p = MORELLO_COMPRESSION
        bounds, _ = CompressedBounds.encode(p, 0x1000, 64)
        for addr in (0x1000, 0x1000 + 63, 0x1000 + 64):
            assert bounds.is_representable(0x1000, addr)

    def test_one_past_always_representable(self):
        p = MORELLO_COMPRESSION
        for base, length in [(0x1000, 4), (0xffffe6dc, 8), (0x4000, 16000)]:
            bounds, _ = CompressedBounds.encode(p, base, length)
            assert bounds.is_representable(base, base + length)

    def test_far_address_not_representable(self):
        p = MORELLO_COMPRESSION
        bounds, _ = CompressedBounds.encode(p, 0x1000, 8)
        assert not bounds.is_representable(0x1000, 0x1000 + 400004)

    def test_whole_space_window_for_maximal(self):
        p = MORELLO_COMPRESSION
        bounds = CompressedBounds.maximal(p)
        lo, hi = bounds.representable_limits(0)
        assert (lo, hi) == (0, 1 << 64)

    def test_out_of_address_space_not_representable(self):
        p = MORELLO_COMPRESSION
        bounds, _ = CompressedBounds.encode(p, 0x1000, 8)
        assert not bounds.is_representable(0x1000, -1)
        assert not bounds.is_representable(0x1000, 1 << 64)


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------


def regions(params: CompressionParams):
    """Strategy generating (base, length) with base+length in range."""
    max_addr = (1 << params.address_width) - 1

    @st.composite
    def gen(draw):
        length = draw(st.one_of(
            st.integers(0, params.max_exact_length),
            st.integers(0, 1 << (params.address_width // 2)),
            st.integers(0, max_addr),
        ))
        base = draw(st.integers(0, max_addr - length))
        return base, length

    return gen()


@pytest.mark.parametrize("params", PARAMS, ids=ids(PARAMS))
@given(data=st.data())
@settings(max_examples=300, deadline=None)
def test_encode_covers_request(params, data):
    """Encoded bounds always cover the requested region, and exactness
    is reported honestly."""
    base, length = data.draw(regions(params))
    bounds, exact = CompressedBounds.encode(params, base, length)
    d = bounds.decode(base)
    assert d.base <= base
    assert d.top >= base + length
    if exact:
        assert (d.base, d.top) == (base, base + length)


@pytest.mark.parametrize("params", PARAMS, ids=ids(PARAMS))
@given(data=st.data())
@settings(max_examples=300, deadline=None)
def test_small_regions_always_exact(params, data):
    length = data.draw(st.integers(0, params.max_exact_length))
    base = data.draw(st.integers(
        0, (1 << params.address_width) - 1 - length))
    _bounds, exact = CompressedBounds.encode(params, base, length)
    assert exact


@pytest.mark.parametrize("params", PARAMS, ids=ids(PARAMS))
@given(data=st.data())
@settings(max_examples=200, deadline=None)
def test_representable_window_is_exact(params, data):
    """The analytic representability window agrees with ground truth:
    an address is in the window iff decoding at it reproduces the same
    bounds."""
    base, length = data.draw(regions(params))
    bounds, _ = CompressedBounds.encode(params, base, length)
    original = bounds.decode(base)
    space = 1 << params.address_width
    lo, hi = bounds.representable_limits(base)
    assert bounds.is_representable(base, base)

    max_addr = space - 1
    # Probe strictly inside, at the edges, and outside the window
    # (all interpreted modulo the address space, as decode is modular).
    probes = {lo, (hi - 1) % space, base, hi % space,
              (lo - 1) % space, data.draw(st.integers(0, max_addr))}
    for addr in probes:
        decoded = bounds.decode(addr)
        same = (decoded.base == original.base
                and decoded.top == original.top)
        in_window = ((addr - lo) % space) < (hi - lo)
        assert same == in_window, (
            f"addr={addr:#x} window=[{lo:#x},{hi:#x}) same={same}")


@pytest.mark.parametrize("params", PARAMS, ids=ids(PARAMS))
@given(data=st.data())
@settings(max_examples=200, deadline=None)
def test_encoding_roundtrips_through_fields(params, data):
    """Field values always re-validate (no out-of-range stored fields)."""
    base, length = data.draw(regions(params))
    bounds, _ = CompressedBounds.encode(params, base, length)
    clone = CompressedBounds(params, bounds.b_field, bounds.t_field,
                             bounds.internal_exponent)
    assert clone.decode(base) == bounds.decode(base)


@given(st.integers(0, (1 << 64) - 1), st.integers(0, 1 << 40))
@settings(max_examples=200, deadline=None)
def test_rounded_length_is_stable(base, length):
    """Encoding the decoded (rounded) region is exact: rounding is
    idempotent."""
    assume(base + length <= 1 << 64)
    p = MORELLO_COMPRESSION
    bounds, _ = CompressedBounds.encode(p, base, length)
    d = bounds.decode(base)
    assume(d.top <= 1 << 64 and d.base >= 0)
    bounds2, exact2 = CompressedBounds.encode(p, d.base, d.length)
    assert exact2
    d2 = bounds2.decode(d.base)
    assert (d2.base, d2.top) == (d.base, d.top)


@given(data=st.data())
@settings(max_examples=200, deadline=None)
def test_portable_envelope_within_architectural_window(data):
    """[45 S4.3.5]'s portable guarantee must be honoured by the Morello
    format: every address in the conservative envelope of a properly
    padded allocation is architecturally representable."""
    from repro.capability.morello import MORELLO
    from repro.memory.allocator import representable_region

    size = data.draw(st.integers(1, 1 << 24))
    align, padded = representable_region(MORELLO_COMPRESSION, size, 16)
    base = align * data.draw(st.integers(1, 1 << 20))
    assume(base + padded < (1 << 48))
    bounds, exact = CompressedBounds.encode(MORELLO_COMPRESSION, base,
                                            padded)
    assert exact
    lo, hi = MORELLO.portable_representable_limits(base, padded)
    probes = {lo, hi - 1, base, base + padded,
              data.draw(st.integers(lo, hi - 1))}
    for addr in probes:
        assert bounds.is_representable(base, addr), (
            f"portable-envelope address {addr:#x} not representable for "
            f"[{base:#x},+{padded})")
