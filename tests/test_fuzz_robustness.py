"""Robustness fuzzing: no input program may crash the machinery.

Whatever a generated program does -- UB, traps, aborts, frontend
rejection -- the result must be an :class:`~repro.errors.Outcome`, never
an internal Python exception.  Fixed seeds keep the corpus reproducible.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import Outcome
from repro.impls import ALL_IMPLEMENTATIONS, by_name

EXTRA = (by_name("cerberus-cheriot"), by_name("cheriot-O0"))


def _pointer_program(rng: random.Random) -> str:
    n = rng.randint(2, 5)
    steps = []
    for _ in range(rng.randint(2, 7)):
        k = rng.randrange(10)
        if k == 0:
            steps.append(f"  arr[{rng.randint(-1, n)}] = "
                         f"{rng.randint(-5, 5)};")
        elif k == 1:
            steps.append("  s.p = s.p + 1;")
        elif k == 2:
            steps.append("  *s.p = s.a;")
        elif k == 3:
            steps.append('  strcpy(buf, "0123456789abcdef");'
                         if rng.random() < 0.3 else '  strcpy(buf, "ok");')
        elif k == 4:
            steps.append("  { uintptr_t u = (uintptr_t)s.p;"
                         " s.p = (int*)(u ^ 0); }")
        elif k == 5:
            steps.append(f"  s.p = cheri_bounds_set(arr, "
                         f"{rng.randint(0, n * 4 + 8)});")
        elif k == 6:
            steps.append("  memset(&s, 0, sizeof s);")
        elif k == 7:
            steps.append("  memcpy(buf, buf + 1, 8);")
        elif k == 8:
            steps.append("  s.a = (int)cheri_length_get(s.p);")
        else:
            steps.append("  if (s.a) s.a--; else s.a++;")
    return "\n".join([
        "#include <string.h>",
        "#include <stdint.h>",
        "#include <cheriintrin.h>",
        "struct pair { int a; int *p; };",
        "int main(void) {",
        f"  int arr[{n}];",
        "  struct pair s;",
        "  char buf[16];",
        "  s.a = 1;",
        "  s.p = arr;",
        *steps,
        "  return s.a & 63;",
        "}",
    ])


@pytest.mark.parametrize("seed", [7, 991, 5150])
def test_no_internal_crashes(seed):
    rng = random.Random(seed)
    impls = tuple(ALL_IMPLEMENTATIONS) + EXTRA
    for _ in range(40):
        src = _pointer_program(rng)
        for impl in impls:
            outcome = impl.run(src)       # must never raise
            assert isinstance(outcome, Outcome)


def test_oracle_generator_programs_never_crash():
    import pathlib
    import sys
    examples = pathlib.Path(__file__).parent.parent / "examples"
    sys.path.insert(0, str(examples))
    try:
        from ub_oracle import ProgramGenerator
    finally:
        sys.path.remove(str(examples))
    rng = random.Random(13)
    gen = ProgramGenerator(rng)
    from repro.impls import CERBERUS
    for _ in range(60):
        outcome = CERBERUS.run(gen.generate())
        assert isinstance(outcome, Outcome)
