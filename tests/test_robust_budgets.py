"""Budget governance: execution under a Budget always ends in an Outcome.

The property this file defends (ISSUE 4, docs/ROBUSTNESS.md): for *any*
program -- hand-written pathological ones and fuzz-generated ones alike
-- a governed run returns a structured :class:`~repro.errors.Outcome`.
It never hangs past its deadline, never leaks a raw ``RecursionError``
or ``MemoryError``, and the memory-model invariants still hold at the
point of cutoff.
"""

from __future__ import annotations

import time

import pytest

from repro.capability import MORELLO
from repro.core.interp import CALL_DEPTH_LIMIT, run_program
from repro.errors import Outcome, OutcomeKind, ResourceExhausted
from repro.fuzz.driver import program_for
from repro.impls import CERBERUS
from repro.impls.registry import CERBERUS_MAP
from repro.memory.invariants import check_invariants
from repro.memory.model import MemoryModel, Mode
from repro.obs import EventBus
from repro.robust import Budget, BudgetMeter, DEFAULT_FUZZ_BUDGET, FaultPlan

SPIN = "int main(void) { for (;;) { } return 0; }"
RECURSE = "int f(int n) { return f(n + 1); } int main(void) { return f(0); }"
CHURN = """
int main(void) {
  int i;
  for (i = 0; i < 1000; i = i + 1) { int x; x = i; }
  return 0;
}
"""


class TestBudgetAxes:
    def test_spin_hits_step_budget(self):
        out = CERBERUS.run(SPIN, budget=Budget(max_steps=1_000))
        assert out.kind is OutcomeKind.RESOURCE
        assert out.limit == "steps"
        assert "resource_exhausted (steps)" in out.describe()

    def test_spin_hits_deadline(self):
        started = time.monotonic()
        out = CERBERUS.run(SPIN, budget=Budget(max_steps=10**9,
                                               deadline=0.2))
        elapsed = time.monotonic() - started
        assert out.kind is OutcomeKind.RESOURCE
        assert out.limit == "deadline"
        assert elapsed < 30.0  # never hangs past the deadline

    def test_recursion_is_deterministic_call_depth(self):
        # NOT python-recursion: the semantics' own frame limit must win
        # over the host stack (whose depth varies between processes).
        out = CERBERUS.run(RECURSE)
        assert out.kind is OutcomeKind.RESOURCE
        assert out.limit == "call-depth"
        assert str(CALL_DEPTH_LIMIT) in out.detail

    def test_allocation_count_budget(self):
        out = CERBERUS.run(CHURN, budget=Budget(max_allocations=10))
        assert out.kind is OutcomeKind.RESOURCE
        assert out.limit == "allocations"

    def test_allocation_bytes_budget(self):
        out = CERBERUS.run(CHURN, budget=Budget(max_alloc_bytes=64))
        assert out.kind is OutcomeKind.RESOURCE
        assert out.limit == "memory"

    def test_generous_budget_changes_nothing(self):
        plain = CERBERUS.run("int main(void) { return 42; }")
        governed = CERBERUS.run("int main(void) { return 42; }",
                                budget=DEFAULT_FUZZ_BUDGET)
        assert plain == governed
        assert governed.exit_status == 42

    def test_default_fuzz_budget_is_deterministic(self):
        # Wall-clock axes would break parallel == serial bit-identity.
        assert DEFAULT_FUZZ_BUDGET.deadline is None
        assert DEFAULT_FUZZ_BUDGET.max_steps is not None

    def test_unlimited_budget_property(self):
        assert Budget().unlimited
        assert not Budget(max_steps=1).unlimited


class TestStructuredOutcomes:
    def test_resource_outcome_shape(self):
        out = Outcome.resource_exhausted("steps", "at step 7")
        assert out.kind is OutcomeKind.RESOURCE
        assert out.limit == "steps"
        assert out.describe() == "resource_exhausted (steps)"
        assert not out.ok

    def test_quarantined_outcome_shape(self):
        out = Outcome.quarantined("worker died")
        assert out.kind is OutcomeKind.RESOURCE
        assert out.limit == "worker"
        assert out.describe() == "quarantined: worker died"

    def test_resource_exhausted_error_message(self):
        err = ResourceExhausted("memory", "1024 bytes over")
        assert err.limit == "memory"
        assert "resource exhausted (memory)" in str(err)

    def test_cutoff_emits_robust_event(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        out = CERBERUS.run(SPIN, bus=bus, budget=Budget(max_steps=500))
        assert out.limit == "steps"
        cutoffs = [e for e in seen if e.kind == "robust.cutoff"]
        assert len(cutoffs) == 1
        assert cutoffs[0].data["limit"] == "steps"
        # The run.outcome record carries the limit for the explainer.
        outcomes = [e for e in seen if e.kind == "run.outcome"]
        assert outcomes[-1].data["limit"] == "steps"


class TestGeneratedPrograms:
    """Fuzz-generated programs under tiny budgets: always an Outcome."""

    TINY = Budget(max_steps=500, max_alloc_bytes=1 << 16,
                  max_allocations=64)

    @pytest.mark.parametrize("index", range(25))
    def test_always_structured_outcome(self, index):
        program = program_for(seed=0, index=index)
        out = CERBERUS.run(program.render(), budget=self.TINY)
        assert isinstance(out, Outcome)
        assert out.kind in OutcomeKind
        if out.kind is OutcomeKind.RESOURCE:
            assert out.limit in ("steps", "memory", "allocations",
                                 "call-depth")

    def test_budgeted_outcome_is_reproducible(self):
        for index in range(8):
            source = program_for(seed=3, index=index).render()
            first = CERBERUS.run(source, budget=self.TINY)
            second = CERBERUS.run(source, budget=self.TINY)
            assert first == second


class TestInvariantsAtCutoff:
    def _governed_model(self, budget):
        return MemoryModel(MORELLO, Mode.ABSTRACT, CERBERUS_MAP,
                           meter=BudgetMeter(budget))

    def test_invariants_hold_after_allocation_cutoff(self):
        model = self._governed_model(Budget(max_allocations=8))
        out = run_program(CHURN, model)
        assert out.kind is OutcomeKind.RESOURCE
        check_invariants(model)  # must not raise

    def test_invariants_hold_after_step_cutoff(self):
        model = self._governed_model(Budget(max_steps=300))
        out = run_program(SPIN, model)
        assert out.kind is OutcomeKind.RESOURCE
        check_invariants(model)

    @pytest.mark.parametrize("index", range(10))
    def test_invariants_hold_for_generated_programs(self, index):
        model = self._governed_model(
            Budget(max_steps=400, max_allocations=32))
        source = program_for(seed=1, index=index).render()
        out = run_program(source, model)
        assert isinstance(out, Outcome)
        check_invariants(model)


class TestFaultInjection:
    def test_nth_allocation_fails(self):
        out = CERBERUS.run(CHURN, faults=FaultPlan(fail_alloc_index=5))
        assert out.kind is OutcomeKind.RESOURCE
        assert out.limit == "fault"
        assert "#5" in out.detail

    def test_fault_emits_robust_event(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        CERBERUS.run(CHURN, bus=bus, faults=FaultPlan(fail_alloc_index=3))
        assert any(e.kind == "robust.fault" for e in seen)

    def test_once_token_fires_once(self, tmp_path):
        token = tmp_path / "latch"
        plan = FaultPlan(fail_alloc_index=0, once_token=str(token))
        first = CERBERUS.run(CHURN, faults=plan)
        second = CERBERUS.run(CHURN, faults=plan)
        assert first.limit == "fault"
        assert second.kind is OutcomeKind.EXIT

    def test_compile_delay_applies(self):
        started = time.monotonic()
        out = CERBERUS.run("int main(void) { return 0; }",
                           faults=FaultPlan(compile_delay=0.2))
        assert time.monotonic() - started >= 0.2
        assert out.kind is OutcomeKind.EXIT
