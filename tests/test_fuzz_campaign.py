"""The guided campaign engine: sharding, resume, dedup, durability.

The two regression pins the ISSUE demands live here:

* **Shard determinism**: ``--shard 0/2`` union ``--shard 1/2`` over one
  seed equals the unsharded campaign's findings and merged corpus,
  byte-for-byte (``test_sharded_union_equals_unsharded``).
* **Distinct-bug dedup** (golden): one UB reached via two syntactic
  routes reports one bug with two witnesses, keyed by the explainer's
  explaining signature (``test_same_ub_two_routes_is_one_bug``).
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.errors import UndefinedBehaviour
from repro.fuzz.campaign import (
    CampaignError,
    FRESH_FRACTION,
    _evaluate_candidate,
    _witness_payload,
    derive_candidate,
    load_state,
    parse_shard,
    run_campaign,
    save_state,
    take_snapshot,
)
from repro.fuzz.corpus import (
    SeedEntry,
    atomic_write_text,
    load_findings,
    load_seed_corpus,
    merge_corpus_dirs,
    minimise_corpus,
    record_witness,
    save_seed,
    seeds_dir,
)
from repro.fuzz.coverage import Coverage
from repro.fuzz.driver import program_for
from repro.fuzz.generator import FuzzProgram, FuzzStmt
from repro.fuzz.mutate import MAX_STMTS, mutate
from repro.fuzz.oracle import FuzzTarget
from repro.impls.faults import FaultyImplementation
from repro.impls.registry import CERBERUS
from repro.memory.model import MemoryModel

import random


def _tree(directory) -> dict[str, bytes]:
    directory = pathlib.Path(directory)
    return {str(path.relative_to(directory)): path.read_bytes()
            for path in sorted(directory.rglob("*")) if path.is_file()}


# ---------------------------------------------------------------------------
# Candidate derivation and mutation


def test_empty_snapshot_candidates_equal_blind_generation(tmp_path):
    """A guided campaign's first window is an honest blind baseline."""
    snapshot = take_snapshot(tmp_path)
    for index in range(5):
        program, origin = derive_candidate(9, index, snapshot)
        assert origin == "fresh"
        assert program.render() == program_for(9, index).render()


def test_derive_candidate_is_pure():
    entry = SeedEntry.from_program(program_for(0, 0), 0,
                                   Coverage(ops=frozenset({"main:1"})))
    from repro.fuzz.campaign import Snapshot
    snapshot = Snapshot(entries=(entry,), weights=(1.0,),
                        baseline=entry.coverage.keys())
    first = [derive_candidate(4, k, snapshot) for k in range(8)]
    second = [derive_candidate(4, k, snapshot) for k in range(8)]
    assert [(p.render(), o) for p, o in first] == \
        [(p.render(), o) for p, o in second]
    assert any(origin == "mutant" for _, origin in first)


def test_mutate_is_deterministic_and_bounded():
    base = program_for(2, 1)
    pool = tuple(program_for(2, k) for k in range(4))
    for salt in range(10):
        rng_a, rng_b = random.Random(salt), random.Random(salt)
        out_a = mutate(base, rng_a, pool)
        out_b = mutate(base, rng_b, pool)
        assert out_a.render() == out_b.render()
        assert 1 <= len(out_a.stmts) <= MAX_STMTS
        # Mutants stay well-formed C the frontend accepts.
        assert "int main(void)" in out_a.render()


def test_mutation_templates_are_accepted_by_the_frontend():
    """Every CRuby-shape template must run on the reference (and on the
    CHERIoT format), not bounce off the parser."""
    from repro.fuzz.mutate import _TEMPLATES
    from repro.impls.registry import CHERIOT_ABSTRACT
    program = FuzzProgram(arr_len=4, heap_len=2, stmts=tuple(_TEMPLATES))
    for impl in (CERBERUS, CHERIOT_ABSTRACT):
        outcome = impl.run(program.render())
        assert outcome.kind.value != "error", outcome.describe()


def test_parse_shard():
    assert parse_shard("0/2") == (0, 2)
    assert parse_shard("3/8") == (3, 8)
    for bad in ("2/2", "x/2", "1", "-1/2", "0/0"):
        with pytest.raises(CampaignError):
            parse_shard(bad)


# ---------------------------------------------------------------------------
# Shard determinism (regression pin)


def test_sharded_union_equals_unsharded(tmp_path):
    """shard 0/2 + shard 1/2, merged, is byte-for-byte the unsharded
    campaign's corpus, findings, and state."""
    full = tmp_path / "full"
    shard0 = tmp_path / "shard0"
    shard1 = tmp_path / "shard1"
    merged = tmp_path / "merged"
    run_campaign(seed=3, iterations=10, corpus_dir=full)
    run_campaign(seed=3, iterations=10, corpus_dir=shard0, shard=(0, 2))
    run_campaign(seed=3, iterations=10, corpus_dir=shard1, shard=(1, 2))
    merge_corpus_dirs(merged, [shard0, shard1])
    assert _tree(merged) == _tree(full)
    # The merged corpus resumes as the unsharded campaign would.
    state = load_state(merged)
    assert state == {"version": 1, "seed": 3, "shard": (0, 1),
                     "next_index": 10}


def test_shards_partition_the_window(tmp_path):
    report0 = run_campaign(seed=3, iterations=10,
                           corpus_dir=tmp_path / "s0", shard=(0, 2))
    report1 = run_campaign(seed=3, iterations=10,
                           corpus_dir=tmp_path / "s1", shard=(1, 2))
    assert report0.processed == report1.processed == 5
    assert report0.next_index == report1.next_index == 10


def test_merge_refuses_mixed_seeds(tmp_path):
    run_campaign(seed=1, iterations=4, corpus_dir=tmp_path / "a")
    run_campaign(seed=2, iterations=4, corpus_dir=tmp_path / "b")
    with pytest.raises(CampaignError):
        merge_corpus_dirs(tmp_path / "m",
                          [tmp_path / "a", tmp_path / "b"])


# ---------------------------------------------------------------------------
# Resume semantics and durability


def test_resume_continues_the_window(tmp_path):
    d = tmp_path / "corpus"
    first = run_campaign(seed=5, iterations=6, corpus_dir=d)
    second = run_campaign(seed=5, iterations=6, corpus_dir=d, resume=True)
    assert (first.start_index, first.next_index) == (0, 6)
    assert (second.start_index, second.next_index) == (6, 12)


def test_unresumed_stateful_corpus_is_refused(tmp_path):
    d = tmp_path / "corpus"
    run_campaign(seed=5, iterations=4, corpus_dir=d)
    with pytest.raises(CampaignError, match="resume"):
        run_campaign(seed=5, iterations=4, corpus_dir=d)


def test_seed_mismatch_is_refused(tmp_path):
    d = tmp_path / "corpus"
    run_campaign(seed=5, iterations=4, corpus_dir=d)
    with pytest.raises(CampaignError, match="seed"):
        run_campaign(seed=6, iterations=4, corpus_dir=d, resume=True)


def test_corrupt_seed_entries_do_not_poison_resume(tmp_path):
    """A torn/corrupt corpus file reads as absent (the disk-cache
    reader contract), so a killed campaign's directory stays usable."""
    d = tmp_path / "corpus"
    run_campaign(seed=5, iterations=6, corpus_dir=d)
    entries = load_seed_corpus(d)
    assert entries
    # Damage one entry in place (what a torn non-atomic write would
    # have produced) and add stray garbage.
    victim = seeds_dir(d) / f"{entries[0].name}.json"
    victim.write_text('{"truncat', encoding="utf-8")
    (seeds_dir(d) / "zz-garbage.json").write_text("not json at all",
                                                  encoding="utf-8")
    survivors = load_seed_corpus(d)
    assert len(survivors) == len(entries) - 1
    report = run_campaign(seed=5, iterations=4, corpus_dir=d, resume=True)
    assert report.start_index == 6


def test_corrupt_state_restarts_the_window_safely(tmp_path):
    d = tmp_path / "corpus"
    run_campaign(seed=5, iterations=6, corpus_dir=d)
    before = {entry.name for entry in load_seed_corpus(d)}
    (d / "state.json").write_text("{", encoding="utf-8")
    assert load_state(d) is None
    # Resume with no readable cursor re-runs the window from 0 over the
    # surviving snapshot: no crash, prior seeds intact (writes are
    # content-addressed), and a fresh cursor is published.
    report = run_campaign(seed=5, iterations=6, corpus_dir=d,
                          resume=True)
    assert report.start_index == 0
    assert before <= {entry.name for entry in load_seed_corpus(d)}
    assert load_state(d)["next_index"] == 6


def test_atomic_write_leaves_no_temp_files(tmp_path):
    target = tmp_path / "nested" / "file.json"
    atomic_write_text(target, '{"ok": true}\n')
    assert json.loads(target.read_text()) == {"ok": True}
    assert [p.name for p in target.parent.iterdir()] == ["file.json"]


def test_save_state_roundtrip(tmp_path):
    save_state(tmp_path, 7, (1, 4), 42)
    assert load_state(tmp_path) == {"version": 1, "seed": 7,
                                    "shard": (1, 4), "next_index": 42}


# ---------------------------------------------------------------------------
# Distinct-bug dedup (golden)


class CrashOnUBLoadModel(MemoryModel):
    """Test-only fault: any load the semantics flags as UB crashes the
    interpreter instead -- a reproducible CRASH-class finding."""

    def load(self, ctype, ptr):
        try:
            return super().load(ctype, ptr)
        except UndefinedBehaviour as exc:
            raise RuntimeError(f"boom: {exc.ub.value}")


CRASHY_TARGETS = (FuzzTarget.of(FaultyImplementation(
    name="crashy-load", arch=CERBERUS.arch, mode=CERBERUS.mode,
    address_map=CERBERUS.address_map, opt_level=CERBERUS.opt_level,
    description="test-only: crashes on UB loads",
    model_class=CrashOnUBLoadModel)),)

#: Two syntactic routes to the same out-of-bounds load.
ROUTE_INDEX = FuzzProgram(arr_len=2, heap_len=2, stmts=(
    FuzzStmt("index-read", "acc += a[{0}];", (2,)),))
ROUTE_DEREF = FuzzProgram(arr_len=2, heap_len=2, stmts=(
    FuzzStmt("ptr-arith", "p = a + {0};", (2,)),
    FuzzStmt("deref-read", "acc += *p;")))

#: The golden explaining signature both routes must share.
GOLDEN_SIGNATURE = ["check.ub", "UB_CHERI_BoundsViolation",
                    None, None, None, None]


def test_same_ub_two_routes_is_one_bug(tmp_path):
    """The dedup golden: two witnesses, one distinct bug."""
    for program in (ROUTE_INDEX, ROUTE_DEREF):
        result = _evaluate_candidate(
            (program.to_dict(), CRASHY_TARGETS, None, None, None, True))
        findings = [d for d in result.divergences if d.is_finding]
        assert findings, "engineered route must be a finding"
        assert list(result.signature) == GOLDEN_SIGNATURE
        record, _, _ = record_witness(
            tmp_path, result.signature,
            _witness_payload(program, findings))
    records = load_findings(tmp_path)
    assert len(records) == 1, "same signature must dedup to one bug"
    assert records[0].signature == GOLDEN_SIGNATURE
    assert len(records[0].witnesses) == 2
    for witness in records[0].witnesses.values():
        assert witness["observations"][0]["impl"] == "crashy-load"
        assert witness["observations"][0]["cause"] == "interpreter-crash"


def test_rerecording_a_witness_is_idempotent(tmp_path):
    result = _evaluate_candidate(
        (ROUTE_INDEX.to_dict(), CRASHY_TARGETS, None, None, None, True))
    findings = [d for d in result.divergences if d.is_finding]
    payload = _witness_payload(ROUTE_INDEX, findings)
    _, new_bug, new_witness = record_witness(tmp_path, result.signature,
                                             payload)
    assert new_bug and new_witness
    before = _tree(tmp_path)
    _, new_bug, new_witness = record_witness(tmp_path, result.signature,
                                             payload)
    assert not new_bug and not new_witness
    assert _tree(tmp_path) == before


def test_campaign_records_findings_and_reports_not_ok(tmp_path):
    """End-to-end: a campaign over a crashy target flips ok=False and
    files the bug under findings/."""
    report = run_campaign(seed=0, iterations=8, corpus_dir=tmp_path,
                          targets=CRASHY_TARGETS)
    # Seed 0's early window hits UB loads (the generator is weighted
    # toward them), so at least one finding-class divergence lands.
    assert report.finding_hits > 0
    assert not report.ok
    assert report.new_bugs
    assert load_findings(tmp_path)


# ---------------------------------------------------------------------------
# Corpus scheduling and minimisation


def test_minimise_preserves_union_coverage(tmp_path):
    run_campaign(seed=7, iterations=12, corpus_dir=tmp_path,
                 classify=False)
    before = load_seed_corpus(tmp_path)
    union_before = frozenset().union(*(e.coverage.keys()
                                       for e in before))
    kept, removed = minimise_corpus(tmp_path)
    assert len(kept) + len(removed) == len(before)
    union_after = frozenset().union(*(e.coverage.keys() for e in kept))
    assert union_after == union_before
    assert {e.name for e in load_seed_corpus(tmp_path)} == \
        {e.name for e in kept}


def test_scheduler_prefers_corpus_mutation(tmp_path):
    """Once the corpus is non-empty, mutation dominates fresh draws (at
    the configured FRESH_FRACTION)."""
    run_campaign(seed=7, iterations=10, corpus_dir=tmp_path,
                 classify=False)
    report = run_campaign(seed=7, iterations=40, corpus_dir=tmp_path,
                          classify=False, resume=True)
    assert report.derived.get("mutant", 0) > report.derived.get("fresh", 0)
    total = report.derived.get("mutant", 0) + report.derived.get("fresh", 0)
    assert total == 40
    assert FRESH_FRACTION < 0.5  # the preference the test pins


def test_seed_entries_are_content_addressed(tmp_path):
    program = program_for(0, 1)
    entry = SeedEntry.from_program(program, 0, Coverage())
    save_seed(tmp_path, entry)
    save_seed(tmp_path, entry)   # idempotent republication
    files = list(seeds_dir(tmp_path).glob("*.json"))
    assert len(files) == 1
    assert entry.name in files[0].name
    loaded = load_seed_corpus(tmp_path)[0]
    assert loaded.program.render() == program.render()
