"""The parser: declarators, types, expressions, statements."""

import pytest

from repro.capability import MORELLO
from repro.core import cast as A
from repro.core.cparser import parse_program, Parser
from repro.core.clexer import tokenize
from repro.ctypes import (
    ArrayT, CHAR, FuncT, IKind, INT, Integer, INTPTR, LONG, Pointer,
    StructT, TargetLayout, UINT, ULONG, UnionT,
)
from repro.errors import CSyntaxError

LAYOUT = TargetLayout(MORELLO)


def parse(src):
    return parse_program(src, LAYOUT)


def parse_type(src: str):
    parser = Parser(tokenize(src + ";"), LAYOUT)
    base, _, _ = parser.parse_specifiers()
    return parser.parse_declarator(base)


class TestDeclarators:
    def test_simple(self):
        name, t = parse_type("int x")
        assert (name, t) == ("x", INT)

    def test_pointer_chain(self):
        name, t = parse_type("int **p")
        assert t == Pointer(Pointer(INT))

    def test_array(self):
        _, t = parse_type("int a[3]")
        assert t == ArrayT(elem=INT, length=3)

    def test_array_of_pointers(self):
        _, t = parse_type("int *a[3]")
        assert t == ArrayT(elem=Pointer(INT), length=3)

    def test_pointer_to_array(self):
        _, t = parse_type("int (*p)[3]")
        assert t == Pointer(ArrayT(elem=INT, length=3))

    def test_function_pointer(self):
        name, t = parse_type("int (*fp)(int, long)")
        assert name == "fp"
        assert t == Pointer(FuncT(ret=INT, params=(INT, LONG)))

    def test_array_of_function_pointers(self):
        _, t = parse_type("int (*table[3])(void)")
        assert t == ArrayT(elem=Pointer(FuncT(ret=INT)), length=3)

    def test_multidim_array(self):
        _, t = parse_type("int m[2][3]")
        assert t == ArrayT(elem=ArrayT(elem=INT, length=3), length=2)

    def test_const_pointer_vs_pointer_to_const(self):
        _, t1 = parse_type("const int *p")
        assert t1 == Pointer(INT.qualified_const())
        _, t2 = parse_type("int *const p")
        assert t2.const and t2.pointee == INT

    def test_sized_by_constant_expression(self):
        _, t = parse_type("char buf[4 * 4]")
        assert t.length == 16

    def test_unsigned_combos(self):
        assert parse_type("unsigned long x")[1] == ULONG
        assert parse_type("long unsigned x")[1] == ULONG
        assert parse_type("unsigned x")[1] == UINT

    def test_stdint_typedefs(self):
        assert parse_type("intptr_t v")[1] == INTPTR
        assert parse_type("size_t v")[1].kind is IKind.SIZE
        assert parse_type("ptraddr_t v")[1].kind is IKind.PTRADDR


class TestStructsAndTypedefs:
    def test_struct_definition(self):
        prog = parse("struct p { int x; int y; }; struct p g;")
        decl = prog.globals[0].decl
        assert isinstance(decl.ctype, StructT)
        assert decl.ctype.tag == "p"

    def test_union_definition(self):
        prog = parse(
            "union u { int *p; intptr_t i; }; union u g;")
        assert isinstance(prog.globals[0].decl.ctype, UnionT)

    def test_typedef(self):
        prog = parse("typedef unsigned long word; word g;")
        assert prog.globals[0].decl.ctype == ULONG

    def test_typedef_pointer(self):
        prog = parse("typedef int *iptr; iptr g;")
        assert prog.globals[0].decl.ctype == Pointer(INT)

    def test_struct_self_reference(self):
        prog = parse("""
struct node { struct node *next; int v; };
struct node head;
""")
        node = prog.globals[0].decl.ctype
        assert node.fields[0].ctype.pointee.tag == "node"


class TestFunctions:
    def test_definition_with_params(self):
        prog = parse("int add(int a, int b) { return a + b; }")
        f = prog.functions[0]
        assert f.name == "add"
        assert [p.name for p in f.params] == ["a", "b"]
        assert f.ret == INT

    def test_void_params(self):
        prog = parse("int main(void) { return 0; }")
        assert prog.functions[0].params == ()

    def test_variadic(self):
        prog = parse("int printf(const char *fmt, ...);")
        assert prog.functions[0].variadic

    def test_array_param_decays(self):
        prog = parse("int f(int a[]) { return 0; }")
        assert prog.functions[0].params[0].ctype == Pointer(INT)


class TestExpressions:
    def get_expr(self, src):
        prog = parse(f"int main(void) {{ return {src}; }}")
        return prog.functions[0].body.stmts[0].value

    def test_precedence(self):
        e = self.get_expr("1 + 2 * 3")
        assert isinstance(e, A.Binary) and e.op == "+"
        assert isinstance(e.rhs, A.Binary) and e.rhs.op == "*"

    def test_associativity(self):
        e = self.get_expr("10 - 3 - 2")
        assert e.op == "-" and isinstance(e.lhs, A.Binary)

    def test_conditional(self):
        e = self.get_expr("a ? b : c")
        assert isinstance(e, A.Conditional)

    def test_cast_vs_parenthesised_expr(self):
        e = self.get_expr("(int)x")
        assert isinstance(e, A.Cast) and e.ctype == INT
        e = self.get_expr("(x)")
        assert isinstance(e, A.Ident)

    def test_cast_of_unary(self):
        e = self.get_expr("(intptr_t)&x")
        assert isinstance(e, A.Cast)
        assert isinstance(e.operand, A.Unary) and e.operand.op == "&"

    def test_nested_deref(self):
        e = self.get_expr("**pp")
        assert isinstance(e, A.Unary) and isinstance(e.operand, A.Unary)

    def test_sizeof_type_and_expr(self):
        assert isinstance(self.get_expr("sizeof(int*)"), A.SizeofType)
        assert isinstance(self.get_expr("sizeof x"), A.SizeofExpr)
        assert isinstance(self.get_expr("sizeof(x)"), A.SizeofExpr)

    def test_limit_macros_resolved(self):
        e = self.get_expr("INT_MAX")
        assert isinstance(e, A.IntLit) and e.value == 2**31 - 1
        e = self.get_expr("UINT_MAX")
        assert e.value == 2**32 - 1

    def test_null_is_void_pointer_cast(self):
        e = self.get_expr("NULL")
        assert isinstance(e, A.Cast) and isinstance(e.ctype, Pointer)

    def test_literal_typing(self):
        assert self.get_expr("1").ctype == INT
        assert self.get_expr("5000000000").ctype == LONG
        assert self.get_expr("1u").ctype == UINT
        # Hex literals can become unsigned without a suffix:
        assert self.get_expr("0xffffffff").ctype == UINT

    def test_cheri_perm_constants(self):
        e = self.get_expr("CHERI_PERM_LOAD")
        assert isinstance(e, A.IntLit) and e.value > 0

    def test_offsetof(self):
        prog = parse("""
struct s { int a; int b; };
int main(void) { return offsetof(struct s, b); }
""")
        e = prog.functions[0].body.stmts[0].value
        assert isinstance(e, A.OffsetofExpr) and e.member == "b"

    def test_postfix_chain(self):
        e = self.get_expr("a.b[1]")
        assert isinstance(e, A.Index) and isinstance(e.base, A.Member)

    def test_assignment_ops(self):
        prog = parse("int main(void) { int x; x <<= 2; return x; }")
        stmt = prog.functions[0].body.stmts[1]
        assert isinstance(stmt.expr, A.Assign) and stmt.expr.op == "<<"


class TestStatements:
    def test_for_loop_with_decl(self):
        prog = parse(
            "int main(void) { for (int i = 0; i < 3; i++) ; return 0; }")
        loop = prog.functions[0].body.stmts[0]
        assert isinstance(loop, A.For)
        assert isinstance(loop.init, A.DeclStmt)

    def test_do_while(self):
        prog = parse("int main(void) { do { } while (0); return 0; }")
        loop = prog.functions[0].body.stmts[0]
        assert isinstance(loop, A.While) and loop.do_while

    def test_else_binds_to_nearest_if(self):
        prog = parse("""
int main(void) { if (1) if (0) return 1; else return 2; return 3; }
""")
        outer = prog.functions[0].body.stmts[0]
        assert outer.other is None
        assert outer.then.other is not None

    def test_error_messages_carry_location(self):
        with pytest.raises(CSyntaxError) as exc:
            parse("int main(void) { return 1 +; }")
        assert ":" in str(exc.value)

    def test_missing_semicolon(self):
        with pytest.raises(CSyntaxError):
            parse("int main(void) { return 0 }")
