"""Cache-key completeness audit (ISSUE 10, satellite 1).

Every :class:`~repro.impls.config.Implementation` field is declared as
exactly one of ``COMPILE_AXES`` (feeds the compiled program, so it must
appear in every compile-cache key and the on-disk digest), ``RUN_AXES``
(affects only running a compiled program, so it must appear in the run
configuration key and must NOT fragment the compile layers), or
``META_AXES`` (labels).  This test enforces the partition *by
reflection*: adding a new Implementation field without sorting it into
an axis tuple -- or sorting it into one the caches don't honour --
fails here, not as a silent stale-cache bug.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.capability.cheriot import CHERIOT
from repro.core.compile import run_config_key
from repro.impls import (
    COMPILE_AXES, META_AXES, RUN_AXES, CERBERUS, Implementation,
)
from repro.impls.registry import CHERIOT_MAP
from repro.memory.model import Mode
from repro.memory.options import OOBArithPolicy, SemanticsOptions
from repro.perf.cache import CompileCache
from repro.perf.disk import digest_for

SOURCE = "int main(void) { return 0; }"

#: One alternate value per semantic axis, each differing from
#: CERBERUS's value on that axis.  A new axis must be added here (and
#: to exactly one axis tuple) before this module passes again.
ALTERNATES = {
    "arch": CHERIOT,
    "opt_level": 3,
    "subobject_bounds": True,
    "options": SemanticsOptions(oob_arith=OOBArithPolicy.ARCH_REPRESENTABLE),
    "mode": Mode.HARDWARE,
    "address_map": CHERIOT_MAP,
    "revocation": True,
    "allocator": "freelist",
}


def variant(axis: str) -> Implementation:
    return dataclasses.replace(CERBERUS, **{axis: ALTERNATES[axis]})


def test_axis_tuples_partition_the_implementation_fields():
    declared = COMPILE_AXES + RUN_AXES + META_AXES
    assert len(set(declared)) == len(declared), \
        "an axis is declared in more than one tuple"
    actual = {f.name for f in dataclasses.fields(Implementation)}
    assert set(declared) == actual, (
        "Implementation fields and the declared axis tuples disagree; "
        "sort every new field into COMPILE_AXES, RUN_AXES, or META_AXES")


def test_alternates_cover_every_semantic_axis():
    assert set(ALTERNATES) == set(COMPILE_AXES) | set(RUN_AXES)
    for axis, value in ALTERNATES.items():
        assert value != getattr(CERBERUS, axis), axis


@pytest.mark.parametrize("axis", COMPILE_AXES)
def test_compile_axes_reach_memo_key_and_disk_digest(axis):
    base_key = CompileCache.key_for(CERBERUS, SOURCE)
    alt_key = CompileCache.key_for(variant(axis), SOURCE)
    assert alt_key != base_key, \
        f"compile axis {axis!r} does not reach CompileCache.key_for"
    assert digest_for(alt_key) != digest_for(base_key), \
        f"compile axis {axis!r} does not reach the disk digest"


@pytest.mark.parametrize("axis", RUN_AXES)
def test_run_axes_never_fragment_the_compile_layers(axis):
    base_key = CompileCache.key_for(CERBERUS, SOURCE)
    alt_key = CompileCache.key_for(variant(axis), SOURCE)
    assert alt_key == base_key, \
        f"run-only axis {axis!r} leaked into the compile key"
    assert digest_for(alt_key) == digest_for(base_key)


@pytest.mark.parametrize("axis", RUN_AXES)
def test_run_axes_reach_the_run_config_key(axis):
    base = run_config_key(CERBERUS.fresh_model())
    alt = run_config_key(variant(axis).fresh_model())
    assert alt != base, (
        f"run axis {axis!r} does not reach run_config_key: a snapshot "
        f"or run memo could be replayed under the wrong configuration")


def test_run_config_key_is_stable_for_equal_configurations():
    assert run_config_key(CERBERUS.fresh_model()) \
        == run_config_key(CERBERUS.fresh_model())
