"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.capability import CHERIOT, MORELLO
from repro.impls.registry import CERBERUS_MAP
from repro.memory.allocator import AddressMap
from repro.memory.model import MemoryModel, Mode


@pytest.fixture(autouse=True)
def _isolated_disk_cache(tmp_path, monkeypatch):
    """Keep the suite hermetic: no test touches ``~/.cache/repro``.

    The on-disk compile-cache layer is disabled for every test by
    default -- tests that exercise it opt back in with
    ``configure_disk_cache`` or an explicit ``DiskCache`` -- and
    ``REPRO_CACHE_DIR`` points any code path that re-enables the
    default directory (the CLI mains do) at a throwaway location.
    """
    from repro.perf import cache as perf_cache
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "disk-cache"))
    enabled, directory = perf_cache.disk_cache_config()
    perf_cache.configure_disk_cache(enabled=False, directory=None)
    yield
    perf_cache.configure_disk_cache(enabled=enabled, directory=directory)


@pytest.fixture
def amap() -> AddressMap:
    return CERBERUS_MAP


@pytest.fixture
def model(amap) -> MemoryModel:
    """A fresh abstract-machine memory model on Morello."""
    return MemoryModel(MORELLO, Mode.ABSTRACT, amap)


@pytest.fixture
def hw_model(amap) -> MemoryModel:
    """A fresh hardware-mode memory model on Morello."""
    return MemoryModel(MORELLO, Mode.HARDWARE, amap)


@pytest.fixture
def cheriot_model() -> MemoryModel:
    from repro.impls.registry import CHERIOT_MAP
    return MemoryModel(CHERIOT, Mode.ABSTRACT, CHERIOT_MAP)


def run_abstract(source: str):
    """Run a program on the reference implementation."""
    from repro.impls import CERBERUS
    return CERBERUS.run(source)


def run_hardware(source: str, opt: int = 0):
    from repro.impls import by_name
    name = f"clang-morello-O{opt}"
    return by_name(name).run(source)
