"""Replay the fuzzing regression corpus (``tests/corpus/*.json``).

Every corpus file is a minimized program the differential fuzzer found
interesting, together with the outcome it recorded on each registered
implementation.  Replaying them here turns past fuzz classifications
into permanent regression tests: a semantics change that would silently
re-classify a divergence fails loudly with the implementation name and
the before/after outcomes.

Regenerate or extend the corpus with::

    python -m repro fuzz --seed 0 --iterations 60 \
        --corpus-dir tests/corpus --save-known
"""

import pathlib

import pytest

from repro.fuzz.corpus import load_corpus
from repro.fuzz.evidence import reference_signature
from repro.fuzz.oracle import Cause
from repro.impls.registry import by_name

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CORPUS = load_corpus(CORPUS_DIR)


def test_corpus_is_populated():
    assert CORPUS, f"no corpus files under {CORPUS_DIR}"


@pytest.mark.parametrize("case", CORPUS, ids=lambda c: c.name)
def test_corpus_case_replays_identically(case):
    mismatches = case.replay()
    assert not mismatches, "\n".join(
        f"{impl}: recorded {expected!r}, now {observed!r}"
        for impl, expected, observed in mismatches)


@pytest.mark.parametrize("case", CORPUS, ids=lambda c: c.name)
def test_corpus_case_is_well_formed(case):
    # A valid known-cause tag (findings would mean a committed bug
    # reproducer; those deserve a fix, not a corpus entry).
    cause = Cause(case.cause)
    assert not cause.is_finding, \
        f"{case.name}: corpus entries must carry a known cause"
    # Every recorded implementation still exists in the registry.
    for impl_name in case.expectations:
        by_name(impl_name)
    # The name embeds the cause, matching the on-disk filename scheme.
    assert case.name.startswith(case.cause)


@pytest.mark.parametrize("case", CORPUS, ids=lambda c: c.name)
def test_corpus_case_explaining_signature_holds(case):
    """Each case carries the reference trace's explaining signature
    (the guided campaign's distinct-bug dedup key), and re-tracing the
    program still produces it -- semantics changes that silently alter
    *why* the reference behaves as recorded fail here."""
    assert case.explaining is not None, \
        f"{case.name}: regenerate the corpus to record its signature"
    signature = reference_signature(case.source)
    recorded = list(case.explaining)
    observed = list(signature) if signature is not None else None
    assert observed == recorded, \
        f"{case.name}: recorded explaining signature {recorded}, " \
        f"now {observed}"
