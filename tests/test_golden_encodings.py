"""Golden vectors for the compression algorithm.

These freeze specific encode/decode results so that algorithmic changes
to the CHERI Concentrate implementation are loud: a change here means
every bounds check in the semantics changed meaning.
"""

import pytest

from repro.capability.cheriot import CHERIOT_COMPRESSION
from repro.capability.concentrate import CompressedBounds
from repro.capability.morello import MORELLO_COMPRESSION

# (params, base, length) -> (b_field, t_field, internal, exact,
#                            decoded_base, decoded_top)
MORELLO_VECTORS = [
    # Small, byte-exact objects: mantissas hold the raw low bits.
    ((0x0, 0), (0x0000, 0x0000, False, True, 0x0, 0x0)),
    ((0x1000, 8), (0x1000, 0x1008 & 0x3FFF, False, True, 0x1000, 0x1008)),
    ((0xffffe6dc, 8), (0xe6dc, (0xe6e4) & 0x3FFF, False, True,
                       0xffffe6dc, 0xffffe6e4)),
    # The largest byte-exact length.
    ((0x4000, 16383), (0x4000, (0x4000 + 16383) & 0x3FFF, False, True,
                       0x4000, 0x4000 + 16383)),
    # Internal exponent: 2^20 at an aligned base stays exact.
    ((0x100000, 1 << 20), (None, None, True, True,
                           0x100000, 0x100000 + (1 << 20))),
    # Unaligned large request rounds outward.
    ((0x100001, 1 << 20), (None, None, True, False, 0x100000, 0x200200)),
]


@pytest.mark.parametrize("request_,expected", MORELLO_VECTORS,
                         ids=[f"base={b:#x},len={l}"
                              for (b, l), _ in MORELLO_VECTORS])
def test_morello_golden_vectors(request_, expected):
    base, length = request_
    b_field, t_field, internal, exact, dbase, dtop = expected
    bounds, got_exact = CompressedBounds.encode(MORELLO_COMPRESSION,
                                                base, length)
    assert got_exact == exact
    assert bounds.internal_exponent == internal
    if b_field is not None:
        assert bounds.b_field == b_field
    if t_field is not None:
        assert bounds.t_field == t_field
    decoded = bounds.decode(base)
    assert (decoded.base, decoded.top) == (dbase, dtop)


CHERIOT_VECTORS = [
    ((0x20000000, 511), (True, 0x20000000, 0x20000000 + 511)),
    ((0x20000000, 512), (True, 0x20000000, 0x20000000 + 512)),
    # Above 511 bytes the granule is 8: an unaligned base goes inexact
    # even when the length is a multiple of 8.
    ((0x20000001, 600), (False, 0x20000000, 0x20000260)),
    # 601 is not an 8-byte multiple: rounds at granule 8.
    ((0x20000000, 601), (False, 0x20000000, 0x20000000 + 608)),
    ((0x20000001, 601), (False, 0x20000000, 0x20000260)),
]


@pytest.mark.parametrize("request_,expected", CHERIOT_VECTORS,
                         ids=[f"base={b:#x},len={l}"
                              for (b, l), _ in CHERIOT_VECTORS])
def test_cheriot_golden_vectors(request_, expected):
    base, length = request_
    exact, dbase, dtop = expected
    bounds, got_exact = CompressedBounds.encode(CHERIOT_COMPRESSION,
                                                base, length)
    assert got_exact == exact
    decoded = bounds.decode(base)
    assert (decoded.base, decoded.top) == (dbase, dtop)


def test_maximal_fields_are_stable():
    m = CompressedBounds.maximal(MORELLO_COMPRESSION)
    assert m.internal_exponent
    d = m.decode(0)
    assert (d.base, d.top, d.exponent) == (0, 1 << 64, 50)
    c = CompressedBounds.maximal(CHERIOT_COMPRESSION)
    dc = c.decode(0)
    assert (dc.base, dc.top, dc.exponent) == (0, 1 << 32, 23)
