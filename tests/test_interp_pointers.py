"""More interpreter coverage: pointer-heavy programs, aggregates,
multi-dimensional arrays, struct assignment, and linked structures."""

import pytest

from repro.errors import OutcomeKind, UB
from tests.conftest import run_abstract, run_hardware


def expect_exit(src, status=0):
    out = run_abstract(src)
    assert out.kind is OutcomeKind.EXIT, (out.describe(), out.detail)
    assert out.exit_status == status, out.describe()
    return out


class TestMultiDimArrays:
    def test_matrix_walk(self):
        expect_exit("""
int main(void) {
  int m[3][4];
  for (int i = 0; i < 3; i++)
    for (int j = 0; j < 4; j++)
      m[i][j] = i * 4 + j;
  int total = 0;
  for (int i = 0; i < 3; i++)
    for (int j = 0; j < 4; j++)
      total += m[i][j];
  return total;     /* 0+1+...+11 */
}""", 66)

    def test_row_pointer(self):
        expect_exit("""
int main(void) {
  int m[2][3] = { {1,2,3}, {4,5,6} };
  int *row = m[1];
  return row[0] + row[2];    /* 4 + 6 */
}""", 10)

    def test_row_oob_is_caught(self):
        out = run_abstract("""
int main(void) {
  int m[2][3];
  m[0][0] = 1;
  int *row = m[0];
  return row[7];      /* beyond the whole matrix */
}""")
        assert out.kind is OutcomeKind.UNDEFINED

    def test_nested_initializer_padding(self):
        expect_exit("""
int main(void) {
  int m[2][3] = { {1}, {2, 3} };
  return m[0][0] + m[0][1] + m[0][2] + m[1][0] + m[1][1] + m[1][2];
}""", 6)


class TestStructAssignment:
    def test_whole_struct_copy(self):
        expect_exit("""
struct pair { int a; int b; };
int main(void) {
  struct pair x = { 40, 2 };
  struct pair y;
  y = x;                /* member-wise copy */
  x.a = 0;              /* y unaffected */
  return y.a + y.b;
}""", 42)

    def test_struct_with_pointer_copied(self):
        expect_exit("""
#include <cheriintrin.h>
#include <assert.h>
struct box { int *p; int tagbit; };
int main(void) {
  int v = 7;
  struct box a = { &v, 1 };
  struct box b;
  b = a;
  assert(cheri_tag_get(b.p));   /* capability survives struct copy */
  return *b.p - 7;
}""")

    def test_struct_as_argument_and_return(self):
        expect_exit("""
struct pair { int a; int b; };
struct pair swap(struct pair p) {
  struct pair out;
  out.a = p.b;
  out.b = p.a;
  return out;
}
int main(void) {
  struct pair p = { 2, 40 };
  struct pair q = swap(p);
  return q.a + p.a;   /* 40 + 2 */
}""", 42)


class TestLinkedStructures:
    def test_singly_linked_list(self):
        expect_exit("""
#include <stdlib.h>
struct node { int v; struct node *next; };
int main(void) {
  struct node *head = 0;
  for (int i = 1; i <= 5; i++) {
    struct node *n = malloc(sizeof(struct node));
    n->v = i;
    n->next = head;
    head = n;
  }
  int total = 0;
  for (struct node *p = head; p != 0; p = p->next) total += p->v;
  while (head != 0) {
    struct node *next = head->next;
    free(head);
    head = next;
  }
  return total;
}""", 15)

    def test_binary_tree_recursion(self):
        expect_exit("""
#include <stdlib.h>
struct tree { int v; struct tree *l; struct tree *r; };
struct tree *insert(struct tree *t, int v) {
  if (t == 0) {
    struct tree *n = malloc(sizeof(struct tree));
    n->v = v; n->l = 0; n->r = 0;
    return n;
  }
  if (v < t->v) t->l = insert(t->l, v);
  else t->r = insert(t->r, v);
  return t;
}
int total(struct tree *t) {
  if (t == 0) return 0;
  return t->v + total(t->l) + total(t->r);
}
int main(void) {
  struct tree *t = 0;
  int vals[5] = { 8, 3, 10, 1, 20 };
  for (int i = 0; i < 5; i++) t = insert(t, vals[i]);
  return total(t);
}""", 42)

    def test_dangling_after_list_free(self):
        out = run_abstract("""
#include <stdlib.h>
struct node { int v; struct node *next; };
int main(void) {
  struct node *a = malloc(sizeof(struct node));
  a->v = 1; a->next = 0;
  struct node *alias = a;
  free(a);
  return alias->v;
}""")
        assert out.ub is UB.ACCESS_DEAD_ALLOCATION


class TestPointerToPointer:
    def test_out_parameter(self):
        expect_exit("""
#include <stdlib.h>
int provide(int **out) {
  *out = malloc(sizeof(int));
  **out = 42;
  return 0;
}
int main(void) {
  int *p;
  provide(&p);
  int v = *p;
  free(p);
  return v;
}""", 42)

    def test_array_of_strings(self):
        expect_exit("""
#include <string.h>
int main(void) {
  const char *words[3] = { "a", "bc", "def" };
  int total = 0;
  for (int i = 0; i < 3; i++) total += (int)strlen(words[i]);
  return total;
}""", 6)

    def test_swap_via_double_pointer(self):
        expect_exit("""
void swap(int **a, int **b) {
  int *t = *a;
  *a = *b;
  *b = t;
}
int main(void) {
  int x = 1, y = 2;
  int *px = &x, *py = &y;
  swap(&px, &py);
  return *px * 10 + *py;   /* 2*10 + 1 */
}""", 21)


class TestMixedScenarios:
    def test_bubble_sort(self):
        expect_exit("""
int main(void) {
  int a[6] = { 5, 2, 6, 1, 4, 3 };
  for (int i = 0; i < 5; i++)
    for (int j = 0; j < 5 - i; j++)
      if (a[j] > a[j+1]) { int t = a[j]; a[j] = a[j+1]; a[j+1] = t; }
  for (int i = 0; i < 6; i++)
    if (a[i] != i + 1) return 1;
  return 0;
}""")

    def test_string_reverse_in_place(self):
        expect_exit("""
#include <string.h>
int main(void) {
  char s[8] = "abcdef";
  int n = (int)strlen(s);
  for (int i = 0; i < n / 2; i++) {
    char t = s[i];
    s[i] = s[n - 1 - i];
    s[n - 1 - i] = t;
  }
  return strcmp(s, "fedcba");
}""")

    def test_function_pointer_table_with_state(self):
        expect_exit("""
static int acc;
void add2(void) { acc += 2; }
void add5(void) { acc += 5; }
int main(void) {
  void (*ops[4])(void) = { add2, add5, add5, add2 };
  for (int i = 0; i < 4; i++) ops[i]();
  return acc;
}""", 14)

    def test_same_behaviour_on_hardware(self):
        src = """
#include <stdlib.h>
struct node { int v; struct node *next; };
int main(void) {
  struct node *head = 0;
  for (int i = 1; i <= 4; i++) {
    struct node *n = malloc(sizeof(struct node));
    n->v = i * i;
    n->next = head;
    head = n;
  }
  int total = 0;
  for (struct node *p = head; p; p = p->next) total += p->v;
  return total;       /* 1+4+9+16 */
}
"""
        assert run_abstract(src).exit_status == 30
        assert run_hardware(src).exit_status == 30
        assert run_hardware(src, opt=3).exit_status == 30
