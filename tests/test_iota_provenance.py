"""Symbolic (``iota``) provenance resolution: the PNVI-ae-udi cases.

S2.3: an integer-to-pointer cast whose address sits exactly on the
boundary between two exposed allocations -- one-past the end of ``a``
and the start of ``b`` -- cannot be attributed to either allocation at
cast time.  PNVI-ae-udi defers the decision ("user-disambiguation"): the
cast yields a *symbolic* provenance ``@iotaN`` with both candidates, and
the first use that is unambiguous collapses it.  A use compatible with
neither candidate is UB.

These tests drive the memory model directly and observe the transitions
through the event-trace subsystem (``prov.iota_fresh`` /
``prov.iota_resolve``).
"""

import pytest

from repro.capability import MORELLO
from repro.ctypes import CHAR, UINTPTR
from repro.errors import UB, UndefinedBehaviour
from repro.impls.registry import CERBERUS_MAP
from repro.memory import IntegerValue, MVInteger
from repro.memory.model import MemoryModel, Mode
from repro.memory.provenance import Provenance
from repro.memory.values import PointerValue
from repro.obs import EventBus, TraceRecorder


@pytest.fixture
def traced_model():
    bus = EventBus()
    recorder = TraceRecorder()
    recorder.attach(bus)
    model = MemoryModel(MORELLO, Mode.ABSTRACT, CERBERUS_MAP, bus=bus)
    return model, recorder


def _adjacent_exposed(model):
    """Two adjacent exposed heap allocations; returns their pointers."""
    a = model.allocate_region(16)
    b = model.allocate_region(16)
    # Heap bump allocation at representable granularity: 16-byte
    # regions need no padding, so the two footprints abut.
    assert a.cap.top == b.cap.base
    model.ptr_to_int(a, UINTPTR.kind)   # exposes a
    model.ptr_to_int(b, UINTPTR.kind)   # exposes b
    return a, b


def _boundary_cast(model, a, b):
    """Cast a capability-carrying integer whose provenance was lost and
    whose address is the a/b boundary back to a pointer."""
    ival = IntegerValue.of_cap(b.cap, False, Provenance.empty())
    return model.int_to_ptr(ival, CHAR)


class TestBoundaryCast:
    def test_boundary_cast_yields_symbolic_provenance(self, traced_model):
        model, recorder = traced_model
        a, b = _adjacent_exposed(model)
        ptr = _boundary_cast(model, a, b)
        assert ptr.prov.is_symbolic
        fresh = [e for e in recorder.events()
                 if e.kind == "prov.iota_fresh"]
        assert len(fresh) == 1
        assert sorted(fresh[0].data["candidates"]) == \
            sorted([model.allocation_of(a).ident,
                    model.allocation_of(b).ident])

    def test_interior_cast_resolves_immediately(self, traced_model):
        model, recorder = traced_model
        a, b = _adjacent_exposed(model)
        inner = IntegerValue.of_cap(b.cap.with_address(b.address + 4),
                                    False, Provenance.empty())
        ptr = model.int_to_ptr(inner, CHAR)
        assert not ptr.prov.is_symbolic
        assert ptr.prov.ident == model.allocation_of(b).ident
        assert not [e for e in recorder.events()
                    if e.kind == "prov.iota_fresh"]

    def test_unexposed_neighbour_is_not_a_candidate(self, traced_model):
        model, _recorder = traced_model
        a = model.allocate_region(16)
        b = model.allocate_region(16)
        model.ptr_to_int(b, UINTPTR.kind)   # only b exposed
        ptr = _boundary_cast(model, a, b)
        assert not ptr.prov.is_symbolic
        assert ptr.prov.ident == model.allocation_of(b).ident


class TestFirstUseDisambiguation:
    def test_store_at_boundary_resolves_to_the_start_of_b(
            self, traced_model):
        model, recorder = traced_model
        a, b = _adjacent_exposed(model)
        ptr = _boundary_cast(model, a, b)
        # The boundary address is one-past a (no byte of a reachable)
        # and the first byte of b: only b can satisfy a size-1 store.
        model.store(CHAR, ptr,
                    MVInteger(CHAR, IntegerValue.of_int(7)))
        resolves = [e for e in recorder.events()
                    if e.kind == "prov.iota_resolve"]
        assert len(resolves) == 1
        assert resolves[0].data["chosen"] == model.allocation_of(b).ident
        assert resolves[0].data["iota"] == ptr.prov.ident
        # The state's candidate set collapsed for every later use.
        assert model.state.iota_candidates(ptr.prov.ident) == \
            (model.allocation_of(b).ident,)

    def test_resolution_is_sticky(self, traced_model):
        model, recorder = traced_model
        a, b = _adjacent_exposed(model)
        ptr = _boundary_cast(model, a, b)
        model.store(CHAR, ptr, MVInteger(CHAR, IntegerValue.of_int(1)))
        model.load(CHAR, ptr)
        resolves = [e for e in recorder.events()
                    if e.kind == "prov.iota_resolve"]
        assert len(resolves) == 1   # second use does not re-resolve


class TestNeitherCandidateMatches:
    def test_use_after_both_candidates_die_is_ub(self, traced_model):
        model, recorder = traced_model
        a, b = _adjacent_exposed(model)
        ptr = _boundary_cast(model, a, b)
        model.free(a)
        model.free(b)
        with pytest.raises(UndefinedBehaviour) as excinfo:
            model.load(CHAR, ptr)
        assert excinfo.value.ub in (UB.EMPTY_PROVENANCE_ACCESS,
                                    UB.ACCESS_DEAD_ALLOCATION)
        verdicts = [e for e in recorder.events() if e.kind == "check.ub"]
        assert verdicts
        assert verdicts[-1].data["iota"] == ptr.prov.ident

    def test_access_fitting_no_candidate_is_ub(self, traced_model):
        model, _recorder = traced_model
        a, b = _adjacent_exposed(model)
        ptr = _boundary_cast(model, a, b)
        model.free(b)
        # a is still alive, but the boundary address is one-past a: no
        # candidate can carry a one-byte access there.
        with pytest.raises(UndefinedBehaviour):
            model.load(CHAR, ptr)

    def test_symbolic_pointer_still_symbolic_until_use(self, traced_model):
        model, _recorder = traced_model
        a, b = _adjacent_exposed(model)
        ptr = _boundary_cast(model, a, b)
        # Casting back to an integer does not force resolution.
        back = model.ptr_to_int(ptr, UINTPTR.kind)
        assert back.prov.is_symbolic
        assert isinstance(ptr, PointerValue)
