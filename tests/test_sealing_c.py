"""Sealing at the C level (S2.1): seal/unseal intrinsics, sealcap
authority, sentries, and the immutability/unusability guarantees."""

import pytest

from repro.errors import OutcomeKind, TrapKind, UB
from repro.impls import CERBERUS, by_name

HW = "clang-morello-O0"


class TestSealUnseal:
    def test_roundtrip(self):
        src = """
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int secret = 42;
  void *auth = cheri_sealcap_get();
  int *sealed = cheri_seal(&secret, auth);
  assert(cheri_tag_get(sealed));
  assert(cheri_is_sealed(sealed));
  int *back = cheri_unseal(sealed, auth);
  assert(!cheri_is_sealed(back));
  return *back - 42;
}
"""
        assert CERBERUS.run(src).ok
        assert by_name(HW).run(src).ok

    def test_sealed_is_unusable_for_access(self):
        src = """
#include <cheriintrin.h>
int main(void) {
  int x = 1;
  int *sealed = cheri_seal(&x, cheri_sealcap_get());
  return *sealed;
}
"""
        out = CERBERUS.run(src)
        assert out.ub is UB.CHERI_INVALID_CAP
        hw = by_name(HW).run(src)
        assert hw.trap is TrapKind.SEAL_VIOLATION

    def test_sealed_is_immutable(self):
        """Modifying a sealed capability's address clears the tag."""
        src = """
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int a[2];
  int *sealed = cheri_seal(a, cheri_sealcap_get());
  int *moved = sealed + 1;      /* arithmetic on sealed: detag */
  assert(!cheri_tag_get(moved));
  return 0;
}
"""
        assert by_name(HW).run(src).ok

    def test_unseal_with_wrong_otype_detags(self):
        src = """
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int x;
  void *auth = cheri_sealcap_get();
  int *sealed = cheri_seal(&x, auth);
  void *wrong = cheri_address_set(auth, cheri_address_get(auth) + 1);
  int *bad = cheri_unseal(sealed, wrong);
  assert(!cheri_tag_get(bad));
  return 0;
}
"""
        assert CERBERUS.run(src).ok

    def test_seal_without_authority_detags(self):
        src = """
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int x;
  /* A data pointer has no Seal permission. */
  int y;
  int *fake_auth = &y;
  int *sealed = cheri_seal(&x, fake_auth);
  assert(!cheri_tag_get(sealed));
  return 0;
}
"""
        assert CERBERUS.run(src).ok

    def test_sealed_survives_memory_roundtrip(self):
        """Sealed capabilities can be stored/loaded (monotonicity applies
        to use, not to storage)."""
        src = """
#include <cheriintrin.h>
#include <assert.h>
int *slot;
int main(void) {
  int x;
  slot = cheri_seal(&x, cheri_sealcap_get());
  assert(cheri_is_sealed(slot));
  assert(cheri_tag_get(slot));
  return 0;
}
"""
        assert CERBERUS.run(src).ok
        assert by_name(HW).run(src).ok


class TestSentries:
    def test_sentry_create(self):
        src = """
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int x;
  int *e = cheri_sentry_create(&x);
  assert(cheri_is_sentry(e));
  assert(cheri_is_sealed(e));
  return 0;
}
"""
        assert CERBERUS.run(src).ok

    def test_function_pointers_already_sentries(self):
        src = """
#include <cheriintrin.h>
#include <assert.h>
int f(void) { return 7; }
int main(void) {
  int (*p)(void) = f;
  assert(cheri_is_sentry(p));
  return p() - 7;   /* branching to a sentry implicitly unseals */
}
"""
        assert CERBERUS.run(src).ok
        assert by_name(HW).run(src).ok


class TestSealcap:
    def test_sealcap_properties(self):
        src = """
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  void *auth = cheri_sealcap_get();
  assert(cheri_tag_get(auth));
  assert(!cheri_is_sealed(auth));
  /* Its address range is the software otype space, above the
     hardware-reserved otypes. */
  assert(cheri_address_get(auth) >= 4);
  assert(cheri_length_get(auth) > 0);
  return 0;
}
"""
        assert CERBERUS.run(src).ok

    def test_compartment_handoff_pattern(self):
        """The classic use: seal a pointer before handing it to untrusted
        code; only the holder of the authority can use it."""
        src = """
#include <cheriintrin.h>
#include <assert.h>
/* "untrusted" code: receives an opaque handle */
int untrusted_peek(int *handle) {
  if (!cheri_is_sealed(handle)) return -1;
  /* it cannot dereference; it can only hand it back */
  return 0;
}
int trusted_use(int *handle, void *auth) {
  int *p = cheri_unseal(handle, auth);
  return *p;
}
int main(void) {
  int secret = 9;
  void *auth = cheri_sealcap_get();
  int *handle = cheri_seal(&secret, auth);
  assert(untrusted_peek(handle) == 0);
  assert(trusted_use(handle, auth) == 9);
  return 0;
}
"""
        assert CERBERUS.run(src).ok
        assert by_name(HW).run(src).ok
