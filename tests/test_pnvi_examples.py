"""The classic pointer-provenance examples, under CHERI C.

These programs are adapted from the PNVI litmus tests of "Exploring C
Semantics and Pointer Provenance" (the paper's [28]) -- the examples the
PNVI-ae-udi model was designed around.  Under CHERI C each keeps its
PNVI verdict, with the extra twist that integer-derived pointers carry
provenance but never authority (S3.11: the checks are complementary).
"""

import pytest

from repro.errors import OutcomeKind, UB
from repro.impls import CERBERUS, by_name


def run(src):
    return CERBERUS.run(src)


class TestProvenanceBasics:
    def test_provenance_basic_using_wrong_object(self):
        """The DR260 classic: adjacent objects, pointer arithmetic from
        one to the other's address.  UB under PNVI -- and under CHERI C
        already at the arithmetic (strict ISO rule)."""
        out = run("""
int x = 1, y = 2;
int main(void) {
  int *p = &x + 1;      /* may equal &y */
  int *q = &y;
  if ((char*)p == (char*)q) {
    *p = 11;            /* provenance of x: not a valid access to y */
    return y;
  }
  return 2;
}
""")
        # Either the addresses differ (exit 2) or the access is UB.
        assert out.kind is OutcomeKind.UNDEFINED or out.exit_status == 2

    def test_pointer_copy_via_memcpy_keeps_provenance(self):
        out = run("""
#include <string.h>
int main(void) {
  int x = 7;
  int *p = &x;
  int *q;
  memcpy(&q, &p, sizeof p);
  *q = 11;              /* provenance (and capability) carried */
  return x;
}
""")
        assert out.exit_status == 11

    def test_pointer_offset_from_int_subtraction(self):
        """Computing an offset between objects via integers is defined
        as integer arithmetic; using it to jump objects gives a pointer
        without authority."""
        out = run("""
#include <stdint.h>
int main(void) {
  int x = 1, y = 2;
  uintptr_t ux = (uintptr_t)&x;
  uintptr_t uy = (uintptr_t)&y;
  uintptr_t offset = uy - ux;          /* defined: integers */
  int *p = (int *)(ux + offset);       /* address of y, authority of x */
  *p = 11;
  return y;
}
""")
        # The capability is x's; y's address is outside its bounds.
        assert out.kind is OutcomeKind.UNDEFINED
        assert out.ub in (UB.CHERI_BOUNDS_VIOLATION,
                          UB.CHERI_UNDEFINED_TAG)

    def test_roundtrip_via_intptr_is_fine(self):
        out = run("""
#include <stdint.h>
int main(void) {
  int x = 5;
  intptr_t i = (intptr_t)&x;
  int *p = (int *)i;
  *p = 6;
  return x;
}
""")
        assert out.exit_status == 6

    def test_exposed_integer_roundtrip_lacks_authority(self):
        """PNVI-ae gives the rebuilt pointer x's provenance; CHERI denies
        the access anyway (no tag): provenance recovered, authority not."""
        out = run("""
#include <stdint.h>
int main(void) {
  int x = 5;
  ptraddr_t a = (ptraddr_t)&x;    /* exposes x */
  int *p = (int *)(uintptr_t)a;
  *p = 6;
  return x;
}
""")
        assert out.ub is UB.CHERI_INVALID_CAP


class TestAllocationLifetime:
    def test_pointer_to_dead_stack_frame(self):
        out = run("""
int *f(void) {
  int local = 5;
  int *p = &local;
  return p;
}
int main(void) {
  int *p = f();
  return *p;
}
""")
        assert out.ub is UB.ACCESS_DEAD_ALLOCATION

    def test_equality_of_recycled_address(self):
        """PNVI: a dangling pointer and a fresh object at the same
        address compare == (addresses), though provenance differs."""
        out = run("""
#include <stdint.h>
int *stale;
void make_stale(void) {
  int local;
  stale = &local;
}
int probe(void) {
  int fresh = 1;
  /* Same stack slot as `local` (same frame shape). */
  return stale == &fresh;
}
int main(void) {
  make_stale();
  return probe();
}
""")
        assert out.kind is OutcomeKind.EXIT
        assert out.exit_status == 1     # addresses reused: equal

    def test_no_use_after_scope_even_when_recycled(self):
        out = run("""
int *stale;
void make_stale(void) {
  int local = 7;
  stale = &local;
}
void recycle(void) {
  int fresh = 9;
  (void)fresh;
}
int main(void) {
  make_stale();
  recycle();
  return *stale;
}
""")
        assert out.ub is UB.ACCESS_DEAD_ALLOCATION


class TestExposure:
    def test_unexposed_allocation_is_unreachable_by_integer(self):
        out = run("""
#include <stdint.h>
int main(void) {
  int target = 42;
  int probe;
  /* Expose only `probe`; derive target's address arithmetically. */
  uintptr_t up = (uintptr_t)&probe;
  int *guess = (int *)(up + 16);
  return *guess;
}
""")
        assert out.kind is OutcomeKind.UNDEFINED

    def test_representation_read_exposes(self):
        """Reading a pointer's bytes at integer type is an exposure
        (the load rule's expose step)."""
        out = run("""
#include <stdint.h>
int main(void) {
  int x = 3;
  int *p = &x;
  /* Examine p's representation as integers: exposes x. */
  uint64_t lo = *(uint64_t *)&p;
  /* An integer-built pointer now gets x's provenance... */
  int *q = (int *)(uintptr_t)(ptraddr_t)lo;
  /* ...but of course no tag. == still works (addresses). */
  return q == p ? 0 : 1;
}
""")
        assert out.exit_status == 0

    def test_one_past_boundary_disambiguation(self):
        """The udi case: an integer equal to one-past x / start of y is
        usable for either, decided at first use."""
        out = run("""
#include <stdint.h>
#include <string.h>
int main(void) {
  static unsigned char a[16];
  static unsigned char b[16];
  ptraddr_t pa = (ptraddr_t)&a;     /* expose both */
  ptraddr_t pb = (ptraddr_t)&b;
  if (pb != pa + 16) return 0;      /* not adjacent: vacuous */
  unsigned char *cursor = (unsigned char *)(uintptr_t)pb;
  /* Using it as b's start is the valid disambiguation; still no
     authority, so the access must be rejected by the tag check,
     not by provenance. */
  *cursor = 1;
  return 9;
}
""")
        assert (out.kind is OutcomeKind.EXIT and out.exit_status == 0) or \
            out.ub is UB.CHERI_INVALID_CAP
