"""Bulk operations: memcpy's capability preservation (S3.5), memcmp,
memset."""

import pytest

from repro.ctypes import ArrayT, INT, LONG, Pointer, UCHAR
from repro.errors import UB, UndefinedBehaviour
from repro.memory import IntegerValue, MVInteger, MVPointer
from repro.memory.allocation import AllocKind


def liv(n):
    return MVInteger(LONG, IntegerValue.of_int(n))


@pytest.fixture
def pointer_slots(model):
    """Two pointer-sized slots, the first holding a valid capability."""
    x = model.allocate_object(INT, AllocKind.STACK, "x")
    src = model.allocate_object(Pointer(INT), AllocKind.STACK, "src")
    dst = model.allocate_object(Pointer(INT), AllocKind.STACK, "dst")
    model.store(Pointer(INT), src, MVPointer(Pointer(INT), x))
    return x, src, dst


class TestMemcpy:
    def test_whole_capability_preserved(self, model, pointer_slots):
        x, src, dst = pointer_slots
        model.memcpy(dst, src, 16)
        out = model.load(Pointer(INT), dst)
        assert out.ptr.cap.tag
        assert out.ptr.cap.ghost.is_clean
        assert out.ptr.cap.equal_exact(x.cap)

    def test_partial_capability_taints(self, model, pointer_slots):
        x, src, dst = pointer_slots
        model.store(Pointer(INT), dst, MVPointer(Pointer(INT), x))
        model.memcpy(dst, src, 8)      # half a capability
        out = model.load(Pointer(INT), dst)
        assert out.ptr.cap.ghost.tag_unspecified

    def test_misaligned_phase_taints(self, model):
        t = ArrayT(elem=UCHAR, length=64)
        x = model.allocate_object(INT, AllocKind.STACK, "x")
        src = model.allocate_object(Pointer(INT), AllocKind.STACK, "s")
        model.store(Pointer(INT), src, MVPointer(Pointer(INT), x))
        buf = model.allocate_object(t, AllocKind.STACK, "buf")
        off = buf.with_cap(buf.cap.with_address(buf.address + 1))
        model.memcpy(off, src, 16)     # misaligned destination
        meta = model.state.capmeta_at(buf.address)
        assert not meta.tag

    def test_bounds_checked(self, model):
        a = model.allocate_region(8)
        b = model.allocate_region(8)
        with pytest.raises(UndefinedBehaviour):
            model.memcpy(a, b, 16)

    def test_zero_length_unchecked(self, model):
        a = model.allocate_region(8)
        model.memcpy(a, model.null_pointer(), 0)   # no access, no UB

    def test_hardware_clears_nonchunk_tags(self, hw_model):
        x = hw_model.allocate_object(INT, AllocKind.STACK, "x")
        src = hw_model.allocate_object(Pointer(INT), AllocKind.STACK, "s")
        dst = hw_model.allocate_object(Pointer(INT), AllocKind.STACK, "d")
        hw_model.store(Pointer(INT), src, MVPointer(Pointer(INT), x))
        hw_model.store(Pointer(INT), dst, MVPointer(Pointer(INT), x))
        hw_model.memcpy(dst, src, 8)
        out = hw_model.load(Pointer(INT), dst)
        assert not out.ptr.cap.tag


class TestMemcmpMemset:
    def test_memcmp_equal(self, model):
        a = model.allocate_region(8)
        b = model.allocate_region(8)
        model.store(LONG, a, liv(7))
        model.store(LONG, b, liv(7))
        assert model.memcmp(a, b, 8) == 0

    def test_memcmp_orders_bytes(self, model):
        a = model.allocate_region(8)
        b = model.allocate_region(8)
        model.store(LONG, a, liv(1))
        model.store(LONG, b, liv(2))
        assert model.memcmp(a, b, 8) == -1
        assert model.memcmp(b, a, 8) == 1

    def test_memcmp_uninitialised_is_ub(self, model):
        a = model.allocate_region(8)
        b = model.allocate_region(8)
        model.store(LONG, a, liv(1))
        with pytest.raises(UndefinedBehaviour) as exc:
            model.memcmp(a, b, 8)
        assert exc.value.ub is UB.READ_UNINITIALISED

    def test_memset_fills(self, model):
        a = model.allocate_region(8)
        model.memset(a, 0xAB, 8)
        for i in range(8):
            assert model.state.read_byte(a.address + i).value == 0xAB

    def test_memset_taints_capabilities(self, model):
        x = model.allocate_object(INT, AllocKind.STACK, "x")
        slot = model.allocate_object(Pointer(INT), AllocKind.STACK, "p")
        model.store(Pointer(INT), slot, MVPointer(Pointer(INT), x))
        model.memset(slot, 0, 16)
        out = model.load(Pointer(INT), slot)
        assert out.ptr.cap.ghost.tag_unspecified
        assert out.ptr.cap.address == 0
