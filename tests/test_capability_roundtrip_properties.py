"""Property-based round trips for the capability representation.

Seeded stdlib ``random`` (no extra dependencies): on both the
Morello-style and CHERIoT-style formats,

* ``decode(encode(c))`` preserves the address, bounds fields, decoded
  bounds, permissions, object type, and tag for any constructible
  capability, and
* ``CompressedBounds.encode`` (the ``CSetBounds`` path) always produces
  bounds that *contain* the requested region, and reports ``exact``
  exactly when the decoded bounds equal the request.
"""

from __future__ import annotations

import random

import pytest

from repro.capability.abstract import Capability
from repro.capability.cheriot import CHERIOT
from repro.capability.concentrate import CompressedBounds
from repro.capability.morello import MORELLO
from repro.capability.otype import OType
from repro.capability.permissions import PermissionSet

ARCHES = (MORELLO, CHERIOT)
CASES_PER_ARCH = 400


def _random_region(rng: random.Random, arch) -> tuple[int, int]:
    """A random ``[base, base+length)`` region, biased toward the
    interesting small/medium sizes around the exactness threshold."""
    space = 1 << arch.address_width
    max_exact = arch.compression.max_exact_length
    length = rng.choice([
        0, 1, rng.randrange(1, 64),
        rng.randrange(1, max_exact + 1),
        rng.randrange(max_exact, min(space, max_exact * 1024)),
        rng.randrange(0, space),
    ])
    base = rng.randrange(0, space - length + 1)
    return base, length


def _random_capability(rng: random.Random, arch) -> Capability:
    base, length = _random_region(rng, arch)
    bounds, _exact = CompressedBounds.encode(arch.compression, base, length)
    perms = PermissionSet.from_iterable(
        perm for perm in arch.perm_order if rng.random() < 0.5)
    otype = OType(rng.choice([
        OType.UNSEALED_VALUE, OType.SENTRY_VALUE,
        rng.randrange(0, 1 << arch.otype_width)]))
    # The address may sit anywhere in the representable window, which is
    # where encode() put it (at base) or any in-bounds excursion.
    address = base if length == 0 else base + rng.randrange(0, length)
    return Capability(
        arch=arch, address=address, bounds_fields=bounds, perms=perms,
        otype=otype, tag=rng.random() < 0.5)


@pytest.mark.parametrize("arch", ARCHES, ids=lambda a: a.name)
def test_encode_decode_roundtrip_preserves_everything(arch):
    rng = random.Random(0xC4E1 + arch.address_width)
    for _ in range(CASES_PER_ARCH):
        cap = _random_capability(rng, arch)
        back = arch.decode(arch.encode(cap), tag=cap.tag)
        assert back.address == cap.address
        assert back.bounds_fields == cap.bounds_fields
        assert back.perms == cap.perms
        assert back.otype == cap.otype
        assert back.tag == cap.tag
        # Derived views agree too (bounds decode from the same fields).
        assert back.decoded() == cap.decoded()


@pytest.mark.parametrize("arch", ARCHES, ids=lambda a: a.name)
def test_concentrate_bounds_always_contain_the_request(arch):
    rng = random.Random(0xB07 + arch.address_width)
    for _ in range(CASES_PER_ARCH):
        base, length = _random_region(rng, arch)
        bounds, exact = CompressedBounds.encode(
            arch.compression, base, length)
        decoded = bounds.decode(base)
        assert decoded.base <= base, (base, length)
        assert base + length <= decoded.top, (base, length)
        assert (decoded.base == base and decoded.top == base + length) \
            == exact, (base, length)


@pytest.mark.parametrize("arch", ARCHES, ids=lambda a: a.name)
def test_small_lengths_encode_exactly(arch):
    """Byte-granular exactness up to the format's published threshold
    (S2.1 / S3.10: 511 bytes for the CHERIoT-style format)."""
    rng = random.Random(0x511 + arch.address_width)
    limit = arch.compression.max_exact_length
    for _ in range(CASES_PER_ARCH):
        length = rng.randrange(0, limit + 1)
        base = rng.randrange(0, (1 << arch.address_width) - length)
        _bounds, exact = CompressedBounds.encode(
            arch.compression, base, length)
        assert exact, (base, length)
