"""The modelled optimiser: each pass and its semantic consequences."""

import pytest

from repro.capability import MORELLO
from repro.core import cast as A
from repro.core.cparser import parse_program
from repro.core.optimizer import optimize_program
from repro.ctypes import TargetLayout
from repro.errors import OutcomeKind
from repro.impls import by_name

LAYOUT = TargetLayout(MORELLO)


def optimize(src, level=3):
    return optimize_program(parse_program(src, LAYOUT), LAYOUT, level)


def main_stmts(prog):
    main = next(f for f in prog.functions if f.name == "main")
    return main.body.stmts


def flat(stmts):
    out = []
    for s in stmts:
        out.append(s)
        if isinstance(s, A.Block):
            out.extend(flat(s.stmts))
    return out


class TestConstantFolding:
    def test_sizeof_folds(self):
        prog = optimize("int main(void){ return sizeof(int) * 3; }", 1)
        ret = main_stmts(prog)[0]
        assert isinstance(ret.value, A.IntLit)
        assert ret.value.value == 12

    def test_transient_arith_collapses(self):
        prog = optimize(
            "int main(void){ int *p; int *q = p + 100001 - 100000;"
            " return 0; }", 1)
        decl = main_stmts(prog)[1]
        init = decl.decls[0].init
        assert isinstance(init, A.Binary) and init.op == "+"
        assert isinstance(init.rhs, A.IntLit) and init.rhs.value == 1

    def test_collapse_handles_negative_net(self):
        prog = optimize(
            "int main(void){ int *p; int *q = p + 5 - 8; return 0; }", 1)
        init = main_stmts(prog)[1].decls[0].init
        assert init.op == "-" and init.rhs.value == 3

    def test_level_zero_is_identity(self):
        src = "int main(void){ return sizeof(int) * 3; }"
        prog = optimize(src, 0)
        assert isinstance(main_stmts(prog)[0].value, A.Binary)


class TestIdentityWriteElimination:
    SRC = """
int main(void) {
  int x = 0;
  int *px = &x;
  unsigned char *p = (unsigned char *)&px;
  p[0] = p[0];
  *px = 1;
  return x;
}
"""

    def test_statement_removed(self):
        prog = optimize(self.SRC)
        assigns = [s for s in flat(main_stmts(prog))
                   if isinstance(s, A.ExprStmt)
                   and isinstance(s.expr, A.Assign)]
        # only *px = 1 remains
        assert len(assigns) == 1

    def test_semantic_effect(self):
        assert by_name("clang-morello-O0").run(self.SRC).kind \
            is OutcomeKind.TRAP
        out = by_name("clang-morello-O3").run(self.SRC)
        assert out.kind is OutcomeKind.EXIT and out.exit_status == 1


class TestLoopToMemcpy:
    SRC = """
int main(void) {
  int x = 0;
  int *px0 = &x;
  int *px1;
  unsigned char *p0 = (unsigned char *)&px0;
  unsigned char *p1 = (unsigned char *)&px1;
  for (int i=0; i<sizeof(int*); i++)
    p1[i] = p0[i];
  *px1 = 1;
  return x;
}
"""

    def test_loop_becomes_memcpy(self):
        prog = optimize(self.SRC)
        calls = [s.expr for s in flat(main_stmts(prog))
                 if isinstance(s, A.ExprStmt)
                 and isinstance(s.expr, A.Call)]
        assert any(isinstance(c.func, A.Ident) and c.func.name == "memcpy"
                   for c in calls)

    def test_semantic_effect_tag_preserved(self):
        assert by_name("clang-riscv-O0").run(self.SRC).kind \
            is OutcomeKind.TRAP
        out = by_name("clang-riscv-O3").run(self.SRC)
        assert out.exit_status == 1

    def test_non_copy_loops_untouched(self):
        src = """
int main(void){
  int a[4]; int b[4];
  for (int i = 0; i < 4; i++) a[i] = b[i] + 1;
  return 0;
}
"""
        prog = optimize(src)
        loops = [s for s in flat(main_stmts(prog)) if isinstance(s, A.For)]
        assert loops


class TestInBoundsAssumption:
    def test_rewrites_index_on_length1_array(self):
        src = """
char g(int i) { char a[1]; a[0] = 7; return a[i]; }
int main(void){ return g(1); }
"""
        prog = optimize(src)
        g = next(f for f in prog.functions if f.name == "g")
        ret = [s for s in flat(g.body.stmts) if isinstance(s, A.Return)][0]
        assert isinstance(ret.value.index, A.IntLit)
        assert ret.value.index.value == 0

    def test_literal_indices_untouched(self):
        src = "int main(void){ char a[1]; a[0] = 1; return a[0]; }"
        prog = optimize(src)
        out = by_name("clang-morello-O3").run(src)
        assert out.exit_status == 1


class TestDoomedWriteElimination:
    BASE = """
void f(int *p, int i) {
  int *q = p + i;
  *q = 42;
}
int main(void) {
  int x=0, y=0;
  f(&x, 1);
  return y;
}
"""
    ESCAPED = """
int *g;
void f(int *p, int i) {
  int *q = p + i;
  *q = 42;
}
int main(void) {
  int x=0, y=0;
  g = &x;
  f(&x, 1);
  return y;
}
"""

    def test_eliminated_at_o3(self):
        out = by_name("clang-morello-O3").run(self.BASE)
        assert out.kind is OutcomeKind.EXIT and out.exit_status == 0

    def test_survives_at_o0(self):
        assert by_name("clang-morello-O0").run(self.BASE).kind \
            is OutcomeKind.TRAP

    def test_escaped_still_eliminated_at_o3(self):
        # "while at -O3 the doomed write is again eliminated" (S3.1)
        out = by_name("clang-morello-O3").run(self.ESCAPED)
        assert out.kind is OutcomeKind.EXIT

    def test_escaped_survives_at_o2(self):
        # "if &x is assigned to a global, then at -O2 the inlined f
        # survives and performs the doomed write" (S3.1)
        from dataclasses import replace
        from repro.impls.registry import CLANG_MORELLO_O3
        o2 = replace(CLANG_MORELLO_O3, name="clang-morello-O2", opt_level=2)
        out = o2.run(self.ESCAPED)
        assert out.kind is OutcomeKind.TRAP

    def test_nonescaped_eliminated_at_o2(self):
        from dataclasses import replace
        from repro.impls.registry import CLANG_MORELLO_O3
        o2 = replace(CLANG_MORELLO_O3, name="clang-morello-O2", opt_level=2)
        out = o2.run(self.BASE)
        assert out.kind is OutcomeKind.EXIT and out.exit_status == 0


class TestSubstitution:
    def test_transient_intptr_collapse_through_locals(self):
        src = """
#include <stdint.h>
int main(void) {
  int x[2];
  x[1] = 3;
  uintptr_t i = (uintptr_t)&x[0];
  uintptr_t j = i + 100001 * sizeof(int);
  uintptr_t k = j - 100000 * sizeof(int);
  int *q = (int*)k;
  return *q;
}
"""
        out0 = by_name("clang-morello-O0").run(src)
        assert out0.kind is OutcomeKind.TRAP
        out3 = by_name("clang-morello-O3").run(src)
        assert out3.kind is OutcomeKind.EXIT and out3.exit_status == 3

    def test_mutated_locals_not_substituted(self):
        src = """
int main(void){
  int a = 1;
  a = 2;
  int b = a + 1;
  return b;
}
"""
        out = by_name("clang-morello-O3").run(src)
        assert out.exit_status == 3

    def test_address_taken_locals_not_substituted(self):
        src = """
int main(void){
  int a = 1;
  int *p = &a;
  *p = 5;
  int b = a;
  return b;
}
"""
        out = by_name("clang-morello-O3").run(src)
        assert out.exit_status == 5
