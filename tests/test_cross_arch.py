"""Portability across capability formats (S3.10): the same semantics over
the CHERIoT-style 64-bit capability format."""

import pytest

from repro.errors import OutcomeKind, UB
from repro.impls import by_name
from repro.testsuite.suite import all_cases

CHERIOT = by_name("cerberus-cheriot")


class TestLayout:
    def test_sizes(self):
        layout = CHERIOT.layout
        from repro.ctypes import IKind, INT, Pointer
        assert layout.sizeof(Pointer(INT)) == 8
        assert layout.int_size(IKind.INTPTR) == 8
        assert layout.int_size(IKind.PTRADDR) == 4
        assert layout.int_size(IKind.LONG) == 4

    def test_portable_program(self):
        """A program using only portable CHERI C facilities behaves the
        same on both formats."""
        src = """
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int a[4];
  a[2] = 5;
  intptr_t ip = (intptr_t)a;
  int *p = (int*)(ip + 2 * sizeof(int));
  assert(cheri_tag_get(p));
  assert(cheri_length_get(p) == 4 * sizeof(int));
  assert(sizeof(intptr_t) == sizeof(void*));
  return *p - 5;
}
"""
        assert by_name("cerberus").run(src).ok
        assert CHERIOT.run(src).ok

    def test_oob_detection_identical(self):
        src = """
int main(void) {
  int a[2];
  int *p = a + 2;
  return *p;
}
"""
        for impl in ("cerberus", "cerberus-cheriot"):
            out = by_name(impl).run(src)
            assert out.ub is UB.CHERI_BOUNDS_VIOLATION

    def test_byte_granularity_difference(self):
        """S3.10/S5.4: CHERIoT is byte-granular to 511 bytes; above that
        it rounds to 8-byte granules while Morello stays byte-exact."""
        src = """
#include <stdlib.h>
#include <cheriintrin.h>
int main(void) {
  char *p = malloc(601);
  return (int)(cheri_length_get(p) - 601);
}
"""
        assert by_name("cerberus").run(src).exit_status == 0
        assert CHERIOT.run(src).exit_status > 0   # padded

    def test_exact_at_511(self):
        src = """
#include <stdlib.h>
#include <cheriintrin.h>
int main(void) {
  char *p = malloc(511);
  return (int)(cheri_length_get(p) - 511);
}
"""
        assert CHERIOT.run(src).exit_status == 0


PORTABLE_EXCLUDES = {
    # These depend on 64-bit layout details or Morello-specific numbers.
    "align-intptr-storage",       # ptraddr_t < intptr_t holds there too,
                                  # but the test asserts 64-bit limits
    "bitwise-mask-below-base",    # INT_MAX mask is target-specific
    "signed-conversions-of-caps", # uint32 truncation identical on 32-bit
    "repr-read-bytes-harmless",   # reads 8 address bytes (64-bit layout)
    "intr-representable-queries", # Morello rounding thresholds
    "intr-bounds-set-exact",      # Morello rounding thresholds
    "alloc-large-padded-representable",  # Morello granule sizes
    "bitwise-low-bit-tagging",    # relies on 64-bit long alignment
}


@pytest.mark.parametrize(
    "case",
    [c for c in all_cases() if c.name not in PORTABLE_EXCLUDES],
    ids=lambda c: c.name)
def test_suite_portability_on_cheriot(case):
    """Every portable suite program has the same expected outcome over
    the CHERIoT-style format (S3.10's portability goal)."""
    outcome = CHERIOT.run(case.source)
    expected = case.expected_for("cerberus", is_hardware=False, opt_level=0)
    assert expected.check(outcome), (
        f"{case.name}: expected {expected.describe()}, got "
        f"{outcome.describe()} [{outcome.detail}]")
