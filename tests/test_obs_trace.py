"""The semantic event-trace subsystem (``repro.obs``).

Unit coverage for the bus/recorder/metrics layers, integration coverage
for the instrumented memory model and interpreter, the golden explainer
test on the Appendix-A ``intptr_bitops`` program, and the fuzz evidence
plumbing (explaining events on findings, the "same explaining event"
shrink signature).
"""

import io
import json
import pathlib

import pytest

from repro.impls import CERBERUS, by_name
from repro.obs import (
    Event,
    EventBus,
    Metrics,
    TraceRecorder,
    explain,
    explaining_signature,
    final_event,
)
from repro.obs.events import EVENT_KINDS
from repro.obs.recorder import load_jsonl

GOLDEN = pathlib.Path(__file__).parent / "golden"

#: The Appendix-A experiment: bitwise masking of an intptr_t, whose
#: ``& INT_MAX`` step leaves the representable region and sets ghost
#: state under the reference semantics.
INTPTR_BITOPS = """
#include <stdint.h>
#include <stdio.h>
#include <limits.h>
int main(void) {
  int x[2]={42,43};
  intptr_t ip = (intptr_t)&x;
  print_cap("cap", ip);
  intptr_t ip2 = ip & UINT_MAX;
  print_cap("cap&uint", ip2);
  intptr_t ip3 = ip & INT_MAX;
  print_cap("cap&int", ip3);
  return 0;
}
"""

UB_PROGRAM = """
int main(void) { int a[2]; int *p = a + 2; return *p; }
"""


def traced_run(source, impl=CERBERUS, ring=None):
    bus = EventBus()
    recorder = TraceRecorder(ring=ring)
    recorder.attach(bus)
    outcome = impl.run(source, bus=bus)
    return outcome, recorder


class TestEventBus:
    def test_emit_sequences_and_steps(self):
        bus = EventBus()
        bus.step = 7
        event = bus.emit("prov.expose", alloc=3, what="@3 exposed")
        assert event.seq == 1 and event.step == 7
        assert bus.emit("prov.expose", alloc=4).seq == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            EventBus().emit("alloc.explode")

    def test_reserved_payload_keys_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            EventBus().emit("prov.expose", seq=1)
        with pytest.raises(ValueError, match="reserved"):
            EventBus().emit("prov.expose", step=1)

    def test_to_dict_is_flat(self):
        event = Event(5, 2, "mem.load", {"addr": "0x10", "size": 4})
        assert event.to_dict() == {"seq": 5, "step": 2, "kind": "mem.load",
                                   "addr": "0x10", "size": 4}

    def test_subscribers_all_called(self):
        bus = EventBus()
        seen_a, seen_b = [], []
        bus.subscribe(seen_a.append)
        bus.subscribe(seen_b.append)
        bus.emit("ghost.set", ghost="tag?")
        assert len(seen_a) == len(seen_b) == 1

    def test_taxonomy_is_dotted(self):
        assert all("." in kind for kind in EVENT_KINDS)


class TestRecorder:
    def test_jsonl_round_trip(self, tmp_path):
        bus = EventBus()
        recorder = TraceRecorder()
        recorder.attach(bus)
        bus.emit("mem.load", addr="0x40", size=4)
        bus.emit("mem.store", addr="0x44", size=4)
        path = tmp_path / "t.jsonl"
        assert recorder.write_jsonl(path) == 2
        rows = load_jsonl(path)
        assert [r["kind"] for r in rows] == ["mem.load", "mem.store"]
        assert rows[0]["seq"] == 1

    def test_ring_mode_drops_oldest(self):
        bus = EventBus()
        recorder = TraceRecorder(ring=3)
        recorder.attach(bus)
        for index in range(10):
            bus.emit("mem.load", addr=hex(index))
        assert recorder.seen == 10
        assert recorder.dropped == 7
        assert [e.data["addr"] for e in recorder.events()] == \
            ["0x7", "0x8", "0x9"]

    def test_write_to_file_object(self):
        bus = EventBus()
        recorder = TraceRecorder()
        recorder.attach(bus)
        bus.emit("run.outcome", outcome="exit", what="exit 0")
        sink = io.StringIO()
        recorder.write_jsonl(sink)
        assert json.loads(sink.getvalue())["kind"] == "run.outcome"


class TestInstrumentation:
    def test_untraced_runs_emit_nothing(self):
        # bus=None must stay the default everywhere.
        outcome = CERBERUS.run(INTPTR_BITOPS)
        assert outcome.ok

    def test_trace_covers_the_taxonomy_core(self):
        outcome, recorder = traced_run(INTPTR_BITOPS)
        assert outcome.ok
        kinds = {e.kind for e in recorder.events()}
        assert {"region.reserve", "alloc.create", "prov.expose",
                "deriv.arith", "ghost.set", "check.access", "mem.load",
                "mem.store", "interp.call", "run.outcome"} <= kinds

    def test_every_event_kind_is_registered(self):
        _outcome, recorder = traced_run(INTPTR_BITOPS)
        assert {e.kind for e in recorder.events()} <= EVENT_KINDS

    def test_ub_check_event_carries_catalogue_entry(self):
        outcome, recorder = traced_run(UB_PROGRAM)
        assert not outcome.ok
        verdicts = [e for e in recorder.events() if e.kind == "check.ub"]
        assert verdicts
        assert verdicts[-1].data["ub"] == "UB_CHERI_BoundsViolation"
        assert "alloc" in verdicts[-1].data

    def test_hardware_trace_has_trap_not_ub(self):
        outcome, recorder = traced_run(UB_PROGRAM,
                                       impl=by_name("clang-morello-O0"))
        kinds = {e.kind for e in recorder.events()}
        assert "check.trap" in kinds
        assert "check.ub" not in kinds

    def test_intrinsic_calls_traced(self):
        source = """
        #include <cheriintrin.h>
        int main(void) {
          int x = 1;
          int *p = &x;
          p = cheri_bounds_set(p, 4);
          return cheri_tag_get(p) ? 0 : 1;
        }
        """
        outcome, recorder = traced_run(source)
        assert outcome.ok
        calls = [e for e in recorder.events() if e.kind == "intrinsic.call"]
        assert [c.data["name"] for c in calls] == \
            ["cheri_bounds_set", "cheri_tag_get"]
        assert any(e.kind == "cap.bounds_set" for e in recorder.events())

    def test_allocation_lifecycle_traced(self):
        source = """
        #include <stdlib.h>
        int main(void) { free(malloc(8)); return 0; }
        """
        outcome, recorder = traced_run(source)
        assert outcome.ok
        kinds = [e.kind for e in recorder.events()]
        assert "alloc.free" in kinds

    def test_steps_are_monotone(self):
        _outcome, recorder = traced_run(INTPTR_BITOPS)
        steps = [e.step for e in recorder.events()]
        assert steps == sorted(steps)


class TestMetrics:
    def test_counts_and_summary(self):
        bus = EventBus()
        metrics = Metrics()
        metrics.attach(bus)
        metrics.start()
        bus.emit("check.ub", ub="UB_CHERI_BoundsViolation", what="x")
        bus.emit("region.reserve", region="heap", base="0x0", size=10,
                 padded_size=16, align=16)
        metrics.finish(steps=42)
        data = metrics.to_dict()
        assert data["steps"] == 42
        assert data["counters"]["events.check.ub"] == 1
        assert data["counters"]["ub.UB_CHERI_BoundsViolation"] == 1
        assert data["counters"]["allocator.reserved_bytes"] == 16
        assert data["counters"]["allocator.padding_bytes"] == 6
        assert "interp steps" in metrics.summary()

    def test_full_run_metrics(self):
        bus = EventBus()
        metrics = Metrics()
        metrics.attach(bus)
        metrics.start()
        outcome = CERBERUS.run(INTPTR_BITOPS, bus=bus)
        metrics.finish(steps=bus.step)
        assert outcome.ok
        data = metrics.to_dict()
        assert data["steps"] > 0
        assert data["counters"]["derivations"] >= 2


class TestExplainer:
    def test_final_event_prefers_ub_verdict(self):
        events = [
            {"seq": 1, "step": 1, "kind": "ghost.set", "ghost": "tag?"},
            {"seq": 2, "step": 2, "kind": "check.ub", "ub": "U"},
            {"seq": 3, "step": 3, "kind": "run.outcome", "outcome": "ub",
             "ub": "U"},
        ]
        assert final_event(events)["seq"] == 2

    def test_outcome_with_ub_outranks_notable(self):
        # UB raised outside the memory model reaches the trace only via
        # the outcome record, which must outrank mere excursions.
        events = [
            {"seq": 1, "step": 1, "kind": "ghost.set", "ghost": "tag?"},
            {"seq": 2, "step": 3, "kind": "run.outcome", "outcome": "ub",
             "ub": "UB036_exceptional_condition"},
        ]
        assert final_event(events)["seq"] == 2

    def test_signature_excludes_addresses(self):
        events = [{"seq": 9, "step": 4, "kind": "check.ub",
                   "ub": "U", "addr": "0x123"}]
        assert explaining_signature(events) == ("check.ub", "U", None,
                                                None, None, None)

    def test_empty_trace(self):
        assert final_event([]) is None
        assert explaining_signature([]) is None
        assert "nothing to explain" in explain([])

    def test_explains_ub_run_with_causal_chain(self):
        outcome, recorder = traced_run(UB_PROGRAM)
        text = explain(recorder.events(), outcome=outcome.describe())
        assert "check.ub" in text
        assert "alloc.create" in text
        assert "UB_CHERI_BoundsViolation" in text
        assert "provenance @" in text

    def test_golden_intptr_bitops_explain(self):
        """The acceptance-criterion trace: the Appendix-A masking
        program, whose explainer names the provenance and derivation
        steps behind the divergence."""
        outcome, recorder = traced_run(INTPTR_BITOPS)
        text = explain(recorder.events(), outcome=outcome.describe())
        expected = (GOLDEN / "trace_explain.txt").read_text()
        assert text == expected
        # Load-bearing content, independent of the exact layout:
        assert "prov.expose" in text
        assert "non-representable" in text
        assert "ghost state set (S3.3 option (c))" in text

    def test_jsonl_trace_explains_identically(self, tmp_path):
        _outcome, recorder = traced_run(INTPTR_BITOPS)
        path = tmp_path / "trace.jsonl"
        recorder.write_jsonl(path)
        assert explain(load_jsonl(path)) == explain(recorder.events())


class TestFuzzEvidence:
    def test_reference_evidence_names_the_explaining_event(self):
        from repro.fuzz.evidence import reference_evidence
        evidence = reference_evidence(UB_PROGRAM)
        assert evidence["kind"] == "check.ub"
        assert evidence["ub"] == "UB_CHERI_BoundsViolation"

    def test_reference_signature_stable_across_runs(self):
        from repro.fuzz.evidence import reference_signature
        assert reference_signature(UB_PROGRAM) == \
            reference_signature(UB_PROGRAM)
        assert reference_signature(UB_PROGRAM) != \
            reference_signature(INTPTR_BITOPS)

    def test_oracle_attaches_evidence_to_findings(self):
        from repro.fuzz.oracle import Cause, Divergence
        div = Divergence(impl_name="x", cause=Cause.UNEXPLAINED,
                         reference="exit 0", observed="trap")
        assert div.evidence is None    # attached lazily by the oracle
        assert div.is_finding

    def test_trace_dir_writes_finding_traces(self, tmp_path):
        # A crashing fake implementation forces a finding group.
        from repro.fuzz.driver import run_fuzz
        from repro.fuzz.oracle import FuzzTarget
        from repro.impls.registry import CERBERUS
        from dataclasses import replace

        class Boom(type(CERBERUS)):
            def run(self, source, main="main", *, bus=None):
                raise RuntimeError("boom")

        boom = Boom(**{f: getattr(CERBERUS, f)
                       for f in CERBERUS.__dataclass_fields__})
        object.__setattr__(boom, "name", "boom")
        targets = (FuzzTarget(boom, CERBERUS),)
        report = run_fuzz(seed=3, iterations=2, targets=targets,
                          trace_dir=tmp_path, shrink_budget=5)
        assert not report.ok
        assert report.trace_paths
        for path in report.trace_paths:
            rows = load_jsonl(path)
            assert rows and rows[0]["seq"] == 1

    def test_preserve_explanation_predicate(self):
        from repro.fuzz.driver import _preserves_group, DivergenceGroup
        from repro.fuzz.evidence import reference_signature
        from repro.fuzz.generator import ProgramGenerator
        import random
        program = ProgramGenerator(random.Random(0)).generate()
        signature = reference_signature(program)
        group = DivergenceGroup(impl_name="none", cause=None,
                                reference_kind="", observed_kind="")
        predicate = _preserves_group(group, (), signature)
        # With no targets the group key never matches: predicate False,
        # but the signature path must not crash on any candidate.
        assert predicate(program) is False
