"""Differential testing of integer arithmetic: random C expressions
evaluated by the interpreter against an independent Python model of the
ISO C semantics (promotions, usual conversions, wrapping)."""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.errors import OutcomeKind
from repro.impls import CERBERUS

U32 = 1 << 32
U64 = 1 << 64


class CExpr:
    """A tiny independent model of C unsigned/signed arithmetic."""

    def __init__(self, text: str, value: int, unsigned64: bool) -> None:
        self.text = text
        self.value = value           # mathematical value after wrapping
        self.unsigned64 = unsigned64


def _wrap_u64(v: int) -> int:
    return v % U64


@st.composite
def u64_exprs(draw, depth: int = 0):
    """Random expressions over unsigned long (no UB possible)."""
    if depth >= 3 or draw(st.booleans()):
        value = draw(st.integers(0, U64 - 1))
        return CExpr(f"{value}ul", value, True)
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^", ">>", "<<"]))
    lhs = draw(u64_exprs(depth=depth + 1))
    if op in (">>", "<<"):
        amount = draw(st.integers(0, 63))
        value = (_wrap_u64(lhs.value << amount) if op == "<<"
                 else lhs.value >> amount)
        return CExpr(f"({lhs.text} {op} {amount})", value, True)
    rhs = draw(u64_exprs(depth=depth + 1))
    table = {"+": lhs.value + rhs.value, "-": lhs.value - rhs.value,
             "*": lhs.value * rhs.value, "&": lhs.value & rhs.value,
             "|": lhs.value | rhs.value, "^": lhs.value ^ rhs.value}
    return CExpr(f"({lhs.text} {op} {rhs.text})",
                 _wrap_u64(table[op]), True)


@given(expr=u64_exprs())
@settings(max_examples=150, deadline=None)
def test_unsigned_arithmetic_matches_c_model(expr):
    src = f"""
int main(void) {{
  unsigned long v = {expr.text};
  return v == {expr.value}ul ? 0 : 1;
}}
"""
    out = CERBERUS.run(src)
    assert out.kind is OutcomeKind.EXIT, (out.describe(), out.detail,
                                          expr.text)
    assert out.exit_status == 0, (expr.text, expr.value)


@given(a=st.integers(-(2**31), 2**31 - 1), b=st.integers(-(2**31), 2**31 - 1))
@settings(max_examples=100, deadline=None)
def test_signed_addition_matches_or_flags_overflow(a, b):
    total = a + b
    in_range = -(2**31) <= total <= 2**31 - 1
    src = f"""
int main(void) {{
  int a = {a};
  int b = {b};
  int c = a + b;
  return c == {total if in_range else 0} ? 0 : 1;
}}
"""
    out = CERBERUS.run(src)
    if in_range:
        assert out.kind is OutcomeKind.EXIT and out.exit_status == 0
    else:
        assert out.kind is OutcomeKind.UNDEFINED


@given(a=st.integers(0, 2**32 - 1), b=st.integers(1, 2**32 - 1))
@settings(max_examples=100, deadline=None)
def test_unsigned_divmod_matches(a, b):
    src = f"""
int main(void) {{
  unsigned a = {a}u;
  unsigned b = {b}u;
  if (a / b != {a // b}u) return 1;
  if (a % b != {a % b}u) return 2;
  return 0;
}}
"""
    out = CERBERUS.run(src)
    assert out.ok, (a, b, out.describe())


@given(a=st.integers(-(2**31) + 1, 2**31 - 1),
       b=st.integers(-(2**31) + 1, 2**31 - 1))
@settings(max_examples=100, deadline=None)
def test_signed_divmod_truncates_toward_zero(a, b):
    assume(b != 0)
    q = abs(a) // abs(b)
    if (a >= 0) != (b >= 0):
        q = -q
    r = a - q * b
    src = f"""
int main(void) {{
  int a = {a};
  int b = {b};
  if (a / b != {q}) return 1;
  if (a % b != {r}) return 2;
  return 0;
}}
"""
    out = CERBERUS.run(src)
    assert out.ok, (a, b, q, r, out.describe())


@given(v=st.integers(0, 2**64 - 1))
@settings(max_examples=100, deadline=None)
def test_narrowing_conversions_match(v):
    src = f"""
#include <stdint.h>
int main(void) {{
  unsigned long v = {v}ul;
  if ((uint32_t)v != {v % U32}u) return 1;
  if ((uint8_t)v != {v % 256}) return 2;
  if ((int)(uint32_t)(v & 0x7fffffff) != {v & 0x7fffffff}) return 3;
  return 0;
}}
"""
    out = CERBERUS.run(src)
    assert out.ok, (v, out.describe())
