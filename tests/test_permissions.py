"""Permission sets: monotonicity and the portable base set."""

import pytest
from hypothesis import given, strategies as st

from repro.capability.permissions import (
    BASE_PERMISSIONS, Permission, PermissionSet,
)

perm_sets = st.frozensets(st.sampled_from(list(Permission)))


class TestBasics:
    def test_base_set_present_on_all_architectures(self):
        from repro.capability import CHERIOT, MORELLO
        # Morello exposes the complete base set; the embedded profile
        # compresses some bits away but keeps the data/exec core.
        assert BASE_PERMISSIONS <= set(MORELLO.perm_order)
        core = {Permission.GLOBAL, Permission.LOAD, Permission.STORE,
                Permission.EXECUTE, Permission.LOAD_CAP,
                Permission.STORE_CAP}
        assert core <= set(CHERIOT.perm_order)

    def test_of_and_contains(self):
        ps = PermissionSet.of(Permission.LOAD, Permission.STORE)
        assert Permission.LOAD in ps
        assert Permission.EXECUTE not in ps
        assert len(ps) == 2

    def test_has_requires_all(self):
        ps = PermissionSet.of(Permission.LOAD, Permission.STORE)
        assert ps.has(Permission.LOAD)
        assert ps.has(Permission.LOAD, Permission.STORE)
        assert not ps.has(Permission.LOAD, Permission.EXECUTE)

    def test_empty(self):
        assert len(PermissionSet.empty()) == 0
        assert not PermissionSet.empty().has(Permission.LOAD)

    def test_describe_order(self):
        ps = PermissionSet.of(Permission.STORE_CAP, Permission.LOAD,
                              Permission.STORE, Permission.LOAD_CAP)
        assert ps.describe() == "rwRW"

    def test_describe_includes_execute(self):
        ps = PermissionSet.of(Permission.EXECUTE, Permission.LOAD)
        assert ps.describe() == "rx"

    def test_iteration_is_sorted_and_stable(self):
        ps = PermissionSet.of(Permission.STORE, Permission.LOAD)
        assert list(ps) == list(ps)


class TestMonotonicity:
    @given(perm_sets, perm_sets)
    def test_intersect_is_subset_of_both(self, a, b):
        pa, pb = PermissionSet(a), PermissionSet(b)
        inter = pa.intersect(pb)
        assert inter.is_subset_of(pa)
        assert inter.is_subset_of(pb)

    @given(perm_sets, st.frozensets(st.sampled_from(list(Permission))))
    def test_without_never_adds(self, a, drop):
        pa = PermissionSet(a)
        reduced = pa.without(*drop)
        assert reduced.is_subset_of(pa)
        for p in drop:
            assert p not in reduced

    @given(perm_sets)
    def test_intersect_with_self_is_identity(self, a):
        pa = PermissionSet(a)
        assert pa.intersect(pa) == pa

    @given(perm_sets, perm_sets)
    def test_no_way_to_regain(self, a, b):
        """Composing any sequence of narrowing ops never exceeds the
        original set (the CHERI monotonicity property at this layer)."""
        pa = PermissionSet(a)
        pb = PermissionSet(b)
        chained = pa.intersect(pb).intersect(pa).without(Permission.LOAD)
        assert chained.is_subset_of(pa)
