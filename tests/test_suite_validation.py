"""The 94-test validation suite: Table 1 accounting and per-test
conformance on every implementation (the S5 experiment as a test)."""

import pytest

from repro.memory.model import Mode
from repro.impls import ALL_IMPLEMENTATIONS
from repro.testsuite.case import TestCase as SuiteCase
from repro.testsuite.categories import CATEGORIES, Category, TOTAL_TESTS
from repro.testsuite.suite import (
    all_cases, cases_by_category, table1_counts, validate_suite,
)

CASES = all_cases()


class TestTable1:
    def test_total_is_94(self):
        assert len(CASES) == TOTAL_TESTS == 94

    def test_category_counts_match_paper_exactly(self):
        counts = table1_counts()
        for category, (want, _desc) in CATEGORIES.items():
            assert counts[category] == want, category

    def test_validate_suite(self):
        validate_suite()

    def test_tag_slots_sum_to_222(self):
        assert sum(len(set(c.categories)) for c in CASES) == 222

    def test_every_category_described(self):
        for category in Category:
            count, desc = CATEGORIES[category]
            assert count > 0 and desc

    def test_cases_by_category(self):
        one_past = cases_by_category(Category.ONE_PAST)
        assert len(one_past) == 1
        assert one_past[0].name == "one-past-construct-and-bounds"

    def test_case_names_unique_and_sources_nonempty(self):
        names = [c.name for c in CASES]
        assert len(set(names)) == len(names)
        for case in CASES:
            assert "int main" in case.source, case.name
            assert case.description, case.name

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            SuiteCase(name="x", categories=(), source="", expect=None)


@pytest.mark.parametrize("case", CASES, ids=[c.name for c in CASES])
def test_case_on_reference(case):
    """Every suite program has its expected outcome on the executable
    semantics (the paper: 'it passes all our tests')."""
    from repro.impls import CERBERUS
    outcome = CERBERUS.run(case.source)
    expected = case.expected_for("cerberus", is_hardware=False, opt_level=0)
    assert expected.check(outcome), (
        f"{case.name}: expected {expected.describe()}, "
        f"got {outcome.describe()} [{outcome.detail}]")


@pytest.mark.parametrize(
    "impl", ALL_IMPLEMENTATIONS, ids=[i.name for i in ALL_IMPLEMENTATIONS])
def test_suite_against_implementation(impl):
    """The S5 cross-implementation conformance run: no implementation
    violates any claim the suite makes about it."""
    failures = []
    for case in CASES:
        expected = case.expected_for(
            impl.name, is_hardware=impl.mode is Mode.HARDWARE,
            opt_level=impl.opt_level)
        if expected is None:
            continue
        outcome = impl.run(case.source)
        if not expected.check(outcome):
            failures.append(
                f"{case.name}: expected {expected.describe()}, got "
                f"{outcome.describe()} [{outcome.detail}]")
    assert not failures, "\n".join(failures)
