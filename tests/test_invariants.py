"""Dynamic verification of the S7 properties: provenance validity and
capability integrity hold in every reachable state of every suite
program (checked after each mutating memory-model operation)."""

import pytest

from repro.capability import MORELLO
from repro.core.cparser import parse_program
from repro.core.interp import Interpreter
from repro.errors import MemoryModelError, OutcomeKind
from repro.impls.registry import CERBERUS_MAP
from repro.memory.invariants import CheckedMemoryModel, check_invariants
from repro.memory.model import MemoryModel, Mode
from repro.testsuite.suite import all_cases

CASES = all_cases()


def run_checked(source: str):
    model = CheckedMemoryModel(MORELLO, Mode.ABSTRACT, CERBERUS_MAP)
    program = parse_program(source, model.layout)
    return Interpreter(program, model).run()


@pytest.mark.parametrize("case", CASES, ids=[c.name for c in CASES])
def test_invariants_hold_throughout_suite(case):
    """Every suite program runs to its outcome with the invariants
    checked after each mutating operation; an invariant violation would
    surface as an OutcomeKind.ERROR / MemoryModelError."""
    outcome = run_checked(case.source)
    expected = case.expected_for("cerberus", is_hardware=False, opt_level=0)
    assert expected.check(outcome), (
        f"{case.name} under invariant checking: expected "
        f"{expected.describe()}, got {outcome.describe()} "
        f"[{outcome.detail}]")


class TestCheckerCatchesViolations:
    """The checker is not vacuous: seeded corruptions are detected."""

    def make_model(self):
        return MemoryModel(MORELLO, Mode.ABSTRACT, CERBERUS_MAP)

    def test_clean_model_passes(self):
        model = self.make_model()
        from repro.ctypes import INT, Pointer
        from repro.memory import MVPointer
        from repro.memory.allocation import AllocKind
        x = model.allocate_object(INT, AllocKind.STACK, "x")
        slot = model.allocate_object(Pointer(INT), AllocKind.STACK, "p")
        model.store(Pointer(INT), slot, MVPointer(Pointer(INT), x))
        check_invariants(model)

    def test_detects_misaligned_tag(self):
        model = self.make_model()
        from repro.memory.state import CapMeta
        model.state.capmeta[0x1001] = CapMeta(tag=True)
        with pytest.raises(MemoryModelError):
            check_invariants(model)

    def test_detects_dangling_provenance(self):
        model = self.make_model()
        from repro.memory.absbyte import AbsByte
        from repro.memory.provenance import Provenance
        model.state.write_byte(0x5000, AbsByte(Provenance.alloc(999), 1))
        with pytest.raises(MemoryModelError):
            check_invariants(model)

    def test_detects_overlapping_allocations(self):
        model = self.make_model()
        from repro.memory.allocation import Allocation, AllocKind
        model.state.add_allocation(Allocation(
            ident=900, base=0x8000, size=64, align=1,
            kind=AllocKind.HEAP))
        model.state.add_allocation(Allocation(
            ident=901, base=0x8020, size=64, align=1,
            kind=AllocKind.HEAP))
        with pytest.raises(MemoryModelError):
            check_invariants(model)

    def test_detects_forged_capability(self):
        """A tagged capability whose bounds match no allocation is a
        capability-integrity violation."""
        model = self.make_model()
        from repro.ctypes import Pointer, INT
        from repro.memory.allocation import AllocKind
        from repro.memory.state import CapMeta
        slot = model.allocate_object(Pointer(INT), AllocKind.STACK, "p")
        forged, _ = model.arch.root_capability().set_bounds(0x666000, 64)
        data = model.arch.encode(forged)
        from repro.memory.absbyte import AbsByte
        from repro.memory.provenance import Provenance
        for i, b in enumerate(data):
            model.state.write_byte(slot.address + i,
                                   AbsByte(Provenance.empty(), b, i))
        model.state.set_capmeta(slot.address, CapMeta(tag=True))
        with pytest.raises(MemoryModelError):
            check_invariants(model)

    def test_dead_allocations_still_license_capabilities(self):
        """Without revocation, a capability into a freed region is not
        an integrity violation (S3.11) -- the allocation record remains."""
        model = self.make_model()
        from repro.ctypes import Pointer, UCHAR
        from repro.memory import MVPointer
        from repro.memory.allocation import AllocKind
        region = model.allocate_region(64)
        slot = model.allocate_object(Pointer(UCHAR), AllocKind.STACK, "p")
        model.store(Pointer(UCHAR), slot,
                    MVPointer(Pointer(UCHAR), region))
        model.free(region)
        check_invariants(model)    # no violation
