"""Error-path coverage: frontend diagnostics, builtin misuse, and
conversion edges the happy-path tests never hit."""

import pytest

from repro.errors import OutcomeKind
from repro.impls import CERBERUS
from tests.conftest import run_abstract


def frontend_error(src, needle=""):
    out = run_abstract(src)
    assert out.kind is OutcomeKind.ERROR, out.describe()
    if needle:
        assert needle in out.detail, out.detail
    return out


class TestFrontendDiagnostics:
    def test_float_type_rejected(self):
        frontend_error("int main(void){ double d = 0; return 0; }",
                       "floating-point")

    def test_float_literal_rejected(self):
        frontend_error("int main(void){ return 1.5; }")

    def test_compound_literal_rejected(self):
        frontend_error(
            "struct p { int a; };"
            "int main(void){ return ((struct p){1}).a; }")

    def test_assign_to_rvalue(self):
        frontend_error("int main(void){ 4 = 5; return 0; }", "lvalue")

    def test_cast_not_lvalue(self):
        frontend_error("int main(void){ int x; (long)x = 5; return 0; }")

    def test_deref_non_pointer(self):
        frontend_error("int main(void){ int x = 1; return *x; }")

    def test_call_non_function(self):
        frontend_error("int main(void){ int x = 1; return x(); }")

    def test_unknown_struct_member(self):
        frontend_error("""
struct p { int a; };
int main(void){ struct p v; return v.b; }""")

    def test_sizeof_void(self):
        frontend_error("int main(void){ return sizeof(void); }")

    def test_undeclared_in_condition(self):
        frontend_error("int main(void){ if (ghost) return 1; return 0; }")

    def test_unbalanced_braces(self):
        frontend_error("int main(void){ return 0;")

    def test_bad_intrinsic_arity(self):
        frontend_error("""
#include <cheriintrin.h>
int main(void){ int x; return (int)cheri_length_get(&x, 1); }""")

    def test_intrinsic_non_capability_struct(self):
        frontend_error("""
#include <cheriintrin.h>
struct s { int a; } v;
int main(void){ return (int)cheri_length_get(v); }""")


class TestBuiltinMisuse:
    def test_printf_missing_args(self):
        frontend_error('#include <stdio.h>\n'
                       'int main(void){ printf("%d %d", 1); return 0; }')

    def test_printf_bad_conversion(self):
        frontend_error('#include <stdio.h>\n'
                       'int main(void){ printf("%Q", 1); return 0; }')

    def test_printf_dangling_percent(self):
        frontend_error('#include <stdio.h>\n'
                       'int main(void){ printf("%"); return 0; }')

    def test_memcpy_needs_pointers(self):
        frontend_error("""
#include <string.h>
int main(void){ memcpy(1, 2, 3); return 0; }""")

    def test_strlen_uninitialised_buffer(self):
        out = run_abstract("""
#include <string.h>
int main(void){ char b[8]; return (int)strlen(b); }""")
        assert out.kind is OutcomeKind.UNDEFINED


class TestConversionEdges:
    def test_bool_conversion_from_pointer(self):
        out = run_abstract("""
int main(void) {
  int x;
  _Bool t = &x;        /* non-null pointer -> 1 */
  _Bool f = (void*)0;  /* null -> 0 */
  return t * 10 + f;
}""")
        assert out.exit_status == 10

    def test_bool_narrowing_is_not_truncation(self):
        out = run_abstract("""
int main(void) {
  _Bool b = 256;       /* nonzero -> 1, not (char)256 == 0 */
  return b;
}""")
        assert out.exit_status == 1

    def test_void_cast_discards(self):
        out = run_abstract("""
int main(void) { int x = 5; (void)x; return 0; }""")
        assert out.ok

    def test_char_signedness(self):
        out = run_abstract("""
int main(void) {
  char c = (char)200;          /* implementation: signed char */
  return c < 0 ? 0 : 1;
}""")
        assert out.exit_status == 0

    def test_negative_modulo_conversion_to_unsigned(self):
        out = run_abstract("""
int main(void) {
  unsigned char u = (unsigned char)-1;
  return u == 255 ? 0 : 1;
}""")
        assert out.exit_status == 0

    def test_conditional_type_join(self):
        out = run_abstract("""
int main(void) {
  int a[2];
  int *p = 1 ? a : a + 1;
  return p == a ? 0 : 1;
}""")
        assert out.exit_status == 0
