"""The on-disk compile cache and warm-start behaviour (ISSUE 8).

The properties under test:

* a warm-started process (fresh in-memory caches, shared disk
  directory) performs **zero frontend compiles** -- every Core program
  is served from disk -- and renders a byte-identical suite report;
* damaged disk entries (corrupt bytes, truncation, a stale format
  version) read as misses, never crashes, and the recompile rewrites
  them so the cache heals itself;
* any number of concurrent processes may share one cache directory and
  still produce identical reports;
* the content address covers every compile axis, so changing e.g. the
  opt level can never serve a stale program.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys

import pytest

from repro.core.coreir import render_core
from repro.impls import CERBERUS, by_name
from repro.perf import CompileCache, DiskCache
from repro.perf.disk import DISK_FORMAT_VERSION, digest_for
from repro.testsuite.compare import run_suite
from repro.testsuite.suite import all_cases

CASES = tuple(all_cases()[:12])


def _entry_path(disk: DiskCache, key: tuple):
    return disk._path_for(digest_for(key))


def _key(source: str) -> tuple:
    return CompileCache.key_for(CERBERUS, source)


SOURCE = CASES[0].source


class TestDiskCacheBasics:
    def test_roundtrip_preserves_the_core_program(self, tmp_path):
        disk = DiskCache(tmp_path)
        cache = CompileCache(disk=None)
        core = cache.core(CERBERUS, SOURCE)
        assert disk.store(_key(SOURCE), core)
        loaded = DiskCache(tmp_path).load(_key(SOURCE))
        assert loaded is not None
        assert render_core(loaded) == render_core(core)

    def test_missing_key_is_a_miss(self, tmp_path):
        assert DiskCache(tmp_path).load(_key("int main() { return 9; }")) \
            is None

    def test_len_counts_published_entries(self, tmp_path):
        disk = DiskCache(tmp_path)
        assert len(disk) == 0
        cache = CompileCache(disk=disk)
        for case in CASES[:4]:
            cache.core(CERBERUS, case.source)
        assert len(disk) == 4

    def test_digest_covers_every_compile_axis(self):
        base = _key(SOURCE)
        o2 = CompileCache.key_for(by_name("clang-morello-O3"), SOURCE)
        other_source = _key(SOURCE + "\n")
        assert digest_for(base) != digest_for(o2)
        assert digest_for(base) != digest_for(other_source)
        # Stable across calls (it is the on-disk address).
        assert digest_for(base) == digest_for(base)


class TestDamagedEntries:
    """Every failure mode reads as a miss and is then rewritten."""

    def _primed(self, tmp_path):
        disk = DiskCache(tmp_path)
        CompileCache(disk=disk).core(CERBERUS, SOURCE)
        path = _entry_path(disk, _key(SOURCE))
        assert path.exists()
        return disk, path

    def _assert_miss_then_heal(self, disk, path):
        assert disk.load(_key(SOURCE)) is None  # miss, no crash
        cache = CompileCache(disk=disk)
        core = cache.core(CERBERUS, SOURCE)  # recompiles...
        assert cache.stats.disk.misses == 1
        assert cache.stats.compiles_performed == 1
        assert path.exists()  # ...and republished
        loaded = disk.load(_key(SOURCE))
        assert loaded is not None
        assert render_core(loaded) == render_core(core)

    def test_corrupt_bytes(self, tmp_path):
        disk, path = self._primed(tmp_path)
        path.write_bytes(b"not a pickle at all")
        self._assert_miss_then_heal(disk, path)

    def test_truncated_entry(self, tmp_path):
        disk, path = self._primed(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])
        self._assert_miss_then_heal(disk, path)

    def test_wrong_format_version(self, tmp_path):
        disk, path = self._primed(tmp_path)
        entry = pickle.loads(path.read_bytes())
        entry["version"] = DISK_FORMAT_VERSION + 1
        path.write_bytes(pickle.dumps(entry))
        self._assert_miss_then_heal(disk, path)

    def test_wrong_digest(self, tmp_path):
        disk, path = self._primed(tmp_path)
        entry = pickle.loads(path.read_bytes())
        entry["digest"] = "0" * 64
        path.write_bytes(pickle.dumps(entry))
        self._assert_miss_then_heal(disk, path)

    def test_unreadable_entry_is_a_miss(self, tmp_path):
        disk, path = self._primed(tmp_path)
        path.write_bytes(pickle.dumps(["wrong", "shape"]))
        assert disk.load(_key(SOURCE)) is None


def _report_bytes(report) -> str:
    lines = [report.summary_line()]
    for result in report.results:
        lines.append(f"{result.case.name} {result.outcome.describe()} "
                     f"{result.outcome.stdout!r} {result.passed}")
    return "\n".join(lines)


class TestWarmStart:
    def test_second_cache_performs_zero_compiles(self, tmp_path):
        disk = DiskCache(tmp_path)
        first = CompileCache(disk=disk)
        for case in CASES:
            first.core(CERBERUS, case.source)
        assert first.stats.compiles_performed == len(CASES)

        warm = CompileCache(disk=disk)  # a "new process"
        for case in CASES:
            warm.core(CERBERUS, case.source)
        assert warm.stats.compiles_performed == 0
        assert warm.stats.parse.misses == 0
        assert warm.stats.disk.hits == len(CASES)
        assert warm.stats.disk.misses == 0
        assert warm.stats.disk.hit_rate == 1.0

    def test_warm_suite_report_is_byte_identical(self, tmp_path):
        from repro.perf import cache as perf_cache
        perf_cache.configure_disk_cache(enabled=True,
                                        directory=str(tmp_path))
        perf_cache.clear_cache()
        cold = run_suite(CERBERUS, CASES, jobs=1)
        perf_cache.clear_cache()  # drop memory layers; disk survives
        warm = run_suite(CERBERUS, CASES, jobs=1)
        stats = perf_cache.global_cache().stats
        assert stats.compiles_performed == 0
        assert stats.disk.hits > 0
        assert _report_bytes(warm) == _report_bytes(cold)

    def test_rejections_are_not_written_to_disk(self, tmp_path):
        disk = DiskCache(tmp_path)
        cache = CompileCache(disk=disk)
        from repro.errors import CSyntaxError, CTypeError
        with pytest.raises((CSyntaxError, CTypeError)):
            cache.core(CERBERUS, "int main( {")
        assert len(disk) == 0


class TestConcurrentProcesses:
    def test_two_processes_share_one_directory(self, tmp_path):
        """Two concurrent suite runs over one ``--cache-dir`` must both
        succeed and print identical reports (the atomic-rename contract:
        racing writers publish identical entries, readers never see a
        torn one)."""
        src = os.path.dirname(os.path.dirname(
            os.path.abspath(sys.modules["repro"].__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        cmd = [sys.executable, "-m", "repro", "suite",
               "--impl", "cerberus", "--cache-dir",
               str(tmp_path / "shared")]
        procs = [subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE,
                                  stderr=subprocess.PIPE, text=True)
                 for _ in range(2)]
        outputs = [proc.communicate(timeout=300) for proc in procs]
        for proc, (stdout, stderr) in zip(procs, outputs):
            assert proc.returncode == 0, stderr
        assert outputs[0][0] == outputs[1][0]
        assert len(DiskCache(tmp_path / "shared")) > 0
