"""Language extensions: switch, enum, and real varargs (va_list)."""

import pytest

from repro.errors import OutcomeKind, UB
from repro.impls import CERBERUS, by_name
from tests.conftest import run_abstract


def expect_exit(src, status=0):
    out = run_abstract(src)
    assert out.kind is OutcomeKind.EXIT, (out.describe(), out.detail)
    assert out.exit_status == status, out.describe()
    return out


class TestSwitch:
    def test_basic_dispatch(self):
        expect_exit("""
int classify(int x) {
  switch (x) {
    case 0: return 10;
    case 1: return 11;
    default: return 99;
  }
}
int main(void) {
  if (classify(0) != 10) return 1;
  if (classify(1) != 11) return 2;
  if (classify(7) != 99) return 3;
  return 0;
}""")

    def test_fallthrough(self):
        expect_exit("""
int main(void) {
  int n = 0;
  switch (2) {
    case 1: n += 1;
    case 2: n += 2;     /* matched: falls through */
    case 3: n += 4;
    default: n += 8;
  }
  return n;             /* 2 + 4 + 8 */
}""", 14)

    def test_break_stops_fallthrough(self):
        expect_exit("""
int main(void) {
  int n = 0;
  switch (1) {
    case 1: n = 5; break;
    case 2: n = 9; break;
  }
  return n;
}""", 5)

    def test_no_match_no_default(self):
        expect_exit("""
int main(void) {
  switch (42) { case 1: return 1; }
  return 0;
}""")

    def test_switch_in_loop(self):
        expect_exit("""
int main(void) {
  int total = 0;
  for (int i = 0; i < 5; i++) {
    switch (i % 2) {
      case 0: total += 10; break;
      default: total += 1; break;
    }
  }
  return total;      /* 3*10 + 2*1 */
}""", 32)

    def test_switch_on_unspecified_is_ub(self):
        out = run_abstract("""
int main(void) {
  int x;
  switch (x) { default: return 1; }
}""")
        assert out.ub is UB.READ_UNINITIALISED

    def test_case_constant_expressions(self):
        expect_exit("""
int main(void) {
  switch (8) {
    case 2 * 4: return 0;
    default: return 1;
  }
}""")


class TestEnum:
    def test_sequential_values(self):
        expect_exit("""
enum colour { RED, GREEN, BLUE };
int main(void) { return RED + GREEN * 10 + BLUE * 100; }
""", 210)

    def test_explicit_values(self):
        expect_exit("""
enum flags { A = 1, B = 4, C, D = 16 };
int main(void) { return A + B + C + D; }   /* 1+4+5+16 */
""", 26)

    def test_enum_as_type(self):
        expect_exit("""
enum mode { OFF, ON };
enum mode flip(enum mode m) { return m == ON ? OFF : ON; }
int main(void) { return flip(OFF) == ON ? 0 : 1; }
""")

    def test_enum_in_switch(self):
        expect_exit("""
enum op { ADD, SUB };
int apply(enum op o, int a, int b) {
  switch (o) {
    case ADD: return a + b;
    case SUB: return a - b;
  }
  return -1;
}
int main(void) { return apply(ADD, 20, 22) - apply(SUB, 44, 2); }
""")


class TestVarargs:
    def test_sum_ints(self):
        expect_exit("""
#include <stdarg.h>
int sum(int n, ...) {
  va_list ap;
  va_start(ap, n);
  int total = 0;
  for (int i = 0; i < n; i++) total += va_arg(ap, int);
  va_end(ap);
  return total;
}
int main(void) { return sum(4, 10, 20, 5, 7); }
""", 42)

    def test_pointer_through_varargs(self):
        """Capabilities pass whole through variadic calls (the S5
        calling-convention concern)."""
        expect_exit("""
#include <stdarg.h>
#include <cheriintrin.h>
int deref_nth(int n, ...) {
  va_list ap;
  va_start(ap, n);
  int *p = 0;
  for (int i = 0; i <= n; i++) p = va_arg(ap, int*);
  va_end(ap);
  if (!cheri_tag_get(p)) return -1;
  return *p;
}
int main(void) {
  int a = 1, b = 2, c = 3;
  return deref_nth(2, &a, &b, &c) - 3;
}
""")

    def test_va_copy(self):
        expect_exit("""
#include <stdarg.h>
int twice(int n, ...) {
  va_list ap, ap2;
  va_start(ap, n);
  va_copy(ap2, ap);
  int first = va_arg(ap, int);
  int again = va_arg(ap2, int);
  va_end(ap);
  va_end(ap2);
  return first + again;
}
int main(void) { return twice(1, 21); }
""", 42)

    def test_overrun_is_ub(self):
        out = run_abstract("""
#include <stdarg.h>
int f(int n, ...) {
  va_list ap;
  va_start(ap, n);
  return va_arg(ap, int);    /* no variadic args were passed */
}
int main(void) { return f(0); }
""")
        assert out.kind is OutcomeKind.UNDEFINED

    def test_mixed_types(self):
        expect_exit("""
#include <stdarg.h>
#include <stdint.h>
long mix(int n, ...) {
  va_list ap;
  va_start(ap, n);
  int i = va_arg(ap, int);
  long l = va_arg(ap, long);
  uintptr_t u = va_arg(ap, uintptr_t);
  va_end(ap);
  return i + l + (long)(u & 0xff);
}
int main(void) {
  return (int)mix(3, 1, 2L, (uintptr_t)39);
}
""", 42)

    def test_varargs_on_hardware(self):
        src = """
#include <stdarg.h>
int sum(int n, ...) {
  va_list ap;
  va_start(ap, n);
  int total = 0;
  for (int i = 0; i < n; i++) total += va_arg(ap, int);
  va_end(ap);
  return total;
}
int main(void) { return sum(3, 1, 2, 3) - 6; }
"""
        assert by_name("clang-morello-O0").run(src).ok
        assert by_name("gcc-morello-O3").run(src).ok
