"""The evaluator: expression semantics, control flow, conversions, UB."""

import pytest

from repro.errors import OutcomeKind, TrapKind, UB
from tests.conftest import run_abstract, run_hardware


def expect_exit(src, status=0):
    out = run_abstract(src)
    assert out.kind is OutcomeKind.EXIT, out.describe() + " " + out.detail
    assert out.exit_status == status, out.describe()
    return out


def expect_ub(src, ub=None):
    out = run_abstract(src)
    assert out.kind is OutcomeKind.UNDEFINED, out.describe()
    if ub is not None:
        assert out.ub is ub, out.describe()
    return out


class TestArithmetic:
    def test_integer_ops(self):
        expect_exit("int main(void){ return (7*6) % 43 + 10/10 - 1; }", 42)

    def test_division_truncates_toward_zero(self):
        # C: -7/2 == -3 (truncation toward zero, not floor)
        expect_exit("int main(void){ return (-7 / 2) + 3; }", 0)
        expect_exit("int main(void){ return 7 / -2 + 3; }", 0)

    def test_modulo_sign(self):
        expect_exit("int main(void){ return -7 % 2 + 1; }", 0)  # -1 + 1

    def test_unsigned_wraps(self):
        expect_exit("""
int main(void){ unsigned u = 0; u = u - 1;
  return u == 4294967295u ? 0 : 1; }""")

    def test_signed_overflow_is_ub(self):
        expect_ub("""
#include <limits.h>
int main(void){ int x = INT_MAX; return x + 1; }""", UB.SIGNED_OVERFLOW)

    def test_signed_overflow_wraps_on_hardware(self):
        out = run_hardware("""
#include <limits.h>
int main(void){ int x = INT_MAX; x = x + 1; return x == INT_MIN ? 0 : 1; }""")
        assert out.ok

    def test_division_by_zero_ub(self):
        expect_ub("int main(void){ int z = 0; return 1 / z; }",
                  UB.DIVISION_BY_ZERO)

    def test_division_by_zero_hardware_yields_zero(self):
        out = run_hardware("int main(void){ int z = 0; return 1 / z; }")
        assert out.ok

    def test_shift_out_of_range_ub(self):
        expect_ub("int main(void){ int s = 33; return 1 << (s + 11); }",
                  UB.SHIFT_OUT_OF_RANGE)

    def test_shift_semantics(self):
        expect_exit("int main(void){ return (1 << 5) >> 3; }", 4)

    def test_bitwise(self):
        expect_exit("int main(void){ return (0xF0 & 0x3C) | (1 ^ 1); }",
                    0x30)

    def test_comparisons_and_logic(self):
        expect_exit("""
int main(void){
  if (!(1 < 2 && 2 <= 2 && 3 > 2 && 2 >= 2 && 1 != 2 && 2 == 2)) return 1;
  if (0 || 0) return 2;
  if (!(1 || 0)) return 3;
  return 0;
}""")

    def test_short_circuit(self):
        expect_exit("""
int hits = 0;
int bump(void) { hits = hits + 1; return 1; }
int main(void){
  0 && bump();
  1 || bump();
  return hits;
}""", 0)

    def test_conditional_expr(self):
        expect_exit("int main(void){ return 1 ? 42 : 7; }", 42)

    def test_comma(self):
        expect_exit("int main(void){ int x; return (x = 4, x + 1); }", 5)

    def test_usual_conversions_signedness(self):
        # -1 compared against unsigned converts to huge value.
        expect_exit("""
int main(void){ unsigned u = 1; int s = -1;
  return (s < u) ? 1 : 0; }""", 0)


class TestControlFlow:
    def test_while_break_continue(self):
        expect_exit("""
int main(void){
  int n = 0;
  int i = 0;
  while (1) {
    i = i + 1;
    if (i > 10) break;
    if (i % 2) continue;
    n = n + i;
  }
  return n;   /* 2+4+6+8+10 */
}""", 30)

    def test_do_while_runs_once(self):
        expect_exit("int main(void){ int n=0; do n=n+1; while(0); return n; }",
                    1)

    def test_nested_loops(self):
        expect_exit("""
int main(void){
  int total = 0;
  for (int i = 0; i < 3; i++)
    for (int j = 0; j < 4; j++)
      total += i * j;
  return total;
}""", 18)

    def test_recursion(self):
        expect_exit("""
int fib(int n) { return n < 2 ? n : fib(n-1) + fib(n-2); }
int main(void){ return fib(10); }""", 55)

    def test_scoped_shadowing(self):
        expect_exit("""
int main(void){
  int x = 1;
  { int x = 2; if (x != 2) return 1; }
  return x;
}""", 1)

    def test_static_local_persists(self):
        expect_exit("""
int counter(void) { static int n; n = n + 1; return n; }
int main(void){ counter(); counter(); return counter(); }""", 3)

    def test_incdec_forms(self):
        expect_exit("""
int main(void){
  int x = 5;
  int a = x++;
  int b = ++x;
  int c = x--;
  int d = --x;
  return a + b + c + d;  /* 5 + 7 + 7 + 5 */
}""", 24)

    def test_pointer_incdec(self):
        expect_exit("""
int main(void){
  int a[3] = {1, 2, 3};
  int *p = a;
  p++;
  int v = *p++;
  return v * 10 + (p - a);   /* 2, offset 2 */
}""", 22)


class TestStringsAndIO:
    def test_printf_formats(self):
        out = expect_exit("""
#include <stdio.h>
int main(void){
  printf("%d %u %x %c %s|", -5, 7u, 255, 'A', "str");
  printf("%ld %zu %%\\n", 123456789L, sizeof(int));
  return 0;
}""")
        assert "-5 7 ff A str|" in out.stdout
        assert "123456789 4 %" in out.stdout

    def test_puts_putchar(self):
        out = expect_exit("""
#include <stdio.h>
int main(void){ puts("hello"); putchar('x'); return 0; }""")
        assert out.stdout == "hello\nx"

    def test_string_functions(self):
        expect_exit("""
#include <string.h>
int main(void){
  char buf[8];
  strcpy(buf, "abc");
  if (strlen(buf) != 3) return 1;
  if (strcmp(buf, "abc") != 0) return 2;
  if (strcmp(buf, "abd") >= 0) return 3;
  if (strncmp(buf, "abX", 2) != 0) return 4;
  return 0;
}""")

    def test_string_literals_interned(self):
        expect_exit("""
int main(void){
  const char *a = "same";
  const char *b = "same";
  return a == b ? 0 : 1;   /* literal interning */
}""")

    def test_char_array_initializer(self):
        expect_exit("""
int main(void){
  char msg[6] = "hi";
  return msg[0] == 'h' && msg[1] == 'i' && msg[2] == 0 ? 0 : 1;
}""")


class TestAborts:
    def test_assert_failure(self):
        out = run_abstract("int main(void){ assert(1 == 2); return 0; }")
        assert out.kind is OutcomeKind.ABORT

    def test_abort(self):
        out = run_abstract("#include <stdlib.h>\nint main(void){ abort(); }")
        assert out.kind is OutcomeKind.ABORT

    def test_exit(self):
        out = run_abstract(
            "#include <stdlib.h>\nint main(void){ exit(3); return 0; }")
        assert out.kind is OutcomeKind.EXIT and out.exit_status == 3

    def test_uninitialised_branch_is_ub(self):
        expect_ub("int main(void){ int x; if (x) return 1; return 0; }",
                  UB.READ_UNINITIALISED)


class TestFrontendErrors:
    def test_unknown_identifier(self):
        out = run_abstract("int main(void){ return nosuch; }")
        assert out.kind is OutcomeKind.ERROR

    def test_unknown_function(self):
        out = run_abstract("int main(void){ return nosuchfn(); }")
        assert out.kind is OutcomeKind.ERROR

    def test_no_main(self):
        out = run_abstract("int helper(void){ return 0; }")
        assert out.kind is OutcomeKind.ERROR

    def test_call_arity_checked(self):
        out = run_abstract("""
int f(int a) { return a; }
int main(void){ return f(1, 2); }""")
        assert out.kind is OutcomeKind.ERROR

    def test_runaway_loop_cut_off(self):
        out = run_abstract("int main(void){ while (1) ; return 0; }")
        assert out.kind is OutcomeKind.RESOURCE
        assert out.limit == "steps"


class TestStructsUnions:
    def test_nested_struct_access(self):
        expect_exit("""
struct inner { int v; };
struct outer { struct inner in; int pad; };
int main(void){
  struct outer o;
  o.in.v = 42;
  o.pad = 1;
  return o.in.v;
}""", 42)

    def test_arrow_access(self):
        expect_exit("""
struct p { int x; int y; };
int main(void){
  struct p s;
  struct p *ps = &s;
  ps->x = 40;
  ps->y = 2;
  return ps->x + s.y;
}""", 42)

    def test_struct_in_array(self):
        expect_exit("""
struct p { int x; int y; };
int main(void){
  struct p ps[2];
  ps[1].x = 42;
  return ps[1].x;
}""", 42)

    def test_union_member_aliasing(self):
        expect_exit("""
union bits { unsigned u; unsigned char b[4]; };
int main(void){
  union bits v;
  v.u = 0x01020304;
  return v.b[0];     /* little endian */
}""", 4)
