"""Address maps, representability padding, and the bump allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.capability.cheriot import CHERIOT_COMPRESSION
from repro.capability.concentrate import CompressedBounds
from repro.capability.morello import MORELLO_COMPRESSION
from repro.errors import MemoryModelError
from repro.memory.allocation import AllocKind
from repro.memory.allocator import (
    AddressMap, BumpAllocator, representable_region,
)

MAP = AddressMap("t", stack_base=0x10000, heap_base=0x40000000,
                 globals_base=0x20000, code_base=0x1000)


class TestRepresentableRegion:
    @pytest.mark.parametrize("params", [MORELLO_COMPRESSION,
                                        CHERIOT_COMPRESSION],
                             ids=["morello", "cheriot"])
    @given(size=st.integers(0, 1 << 30), align=st.sampled_from(
        [1, 2, 4, 8, 16]))
    @settings(max_examples=200, deadline=None)
    def test_result_is_exactly_encodable(self, params, size, align):
        align2, size2 = representable_region(params, size, align)
        assert size2 >= max(size, 1)
        assert align2 >= align
        # Any base at that alignment encodes exactly.
        base = align2 * 37
        bounds, exact = CompressedBounds.encode(params, base, size2)
        assert exact
        d = bounds.decode(base)
        assert (d.base, d.top) == (base, base + size2)

    def test_small_sizes_unpadded(self):
        align, size = representable_region(MORELLO_COMPRESSION, 100, 4)
        assert (align, size) == (4, 100)

    def test_negative_rejected(self):
        with pytest.raises(MemoryModelError):
            representable_region(MORELLO_COMPRESSION, -1, 1)


class TestBumpAllocator:
    def make(self):
        return BumpAllocator(MAP, MORELLO_COMPRESSION)

    def test_stack_grows_down(self):
        alloc = self.make()
        a, _ = alloc.allocate(AllocKind.STACK, 16, 16)
        b, _ = alloc.allocate(AllocKind.STACK, 16, 16)
        assert b < a < MAP.stack_base

    def test_heap_grows_up(self):
        alloc = self.make()
        a, asz = alloc.allocate(AllocKind.HEAP, 32, 16)
        b, _ = alloc.allocate(AllocKind.HEAP, 32, 16)
        assert a >= MAP.heap_base
        assert b >= a + asz

    def test_strings_share_globals_region(self):
        alloc = self.make()
        g, gsz = alloc.allocate(AllocKind.GLOBAL, 8, 8)
        s, _ = alloc.allocate(AllocKind.STRING, 8, 1)
        assert s >= g + gsz       # no overlap

    def test_disjointness_across_many(self):
        alloc = self.make()
        spans = []
        for i in range(50):
            base, size = alloc.allocate(AllocKind.HEAP, 10 + i * 7, 8)
            spans.append((base, base + size))
        spans.sort()
        for (a0, a1), (b0, _b1) in zip(spans, spans[1:]):
            assert a1 <= b0

    def test_rewind_reuses_stack(self):
        alloc = self.make()
        mark = alloc.cursor(AllocKind.STACK)
        a, _ = alloc.allocate(AllocKind.STACK, 16, 16)
        alloc.rewind(AllocKind.STACK, mark)
        b, _ = alloc.allocate(AllocKind.STACK, 16, 16)
        assert a == b

    def test_stack_exhaustion(self):
        small = AddressMap("tiny", stack_base=64, heap_base=0x1000,
                           globals_base=0x2000, code_base=0x3000)
        alloc = BumpAllocator(small, MORELLO_COMPRESSION)
        with pytest.raises(MemoryModelError):
            alloc.allocate(AllocKind.STACK, 1 << 20, 16)
