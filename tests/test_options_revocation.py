"""The S3 design-option switches and CHERIoT-style revocation."""

from dataclasses import replace

import pytest

from repro.errors import OutcomeKind, TrapKind, UB
from repro.impls import CERBERUS, by_name
from repro.memory.options import (
    EqualityPolicy, IntptrPolicy, OOBArithPolicy, PAPER_CHOICES,
    SemanticsOptions,
)


def run_with(src, **option_kwargs):
    impl = replace(CERBERUS, options=SemanticsOptions(**option_kwargs))
    return impl.run(src)


class TestDefaults:
    def test_paper_choices(self):
        assert PAPER_CHOICES.oob_arith is OOBArithPolicy.ISO_UB
        assert PAPER_CHOICES.intptr is IntptrPolicy.DEFINED_WITH_GHOST
        assert PAPER_CHOICES.equality is EqualityPolicy.ADDRESS_ONLY

    def test_describe(self):
        assert "iso_ub" in PAPER_CHOICES.describe()


class TestOOBArithOptions:
    BELOW = """
int main(void) {
  int a[4];
  int *p = a - 1;     /* one below: ISO-UB, architecturally fine */
  (void)p;
  return 0;
}
"""

    def test_iso_rejects_one_below(self):
        out = run_with(self.BELOW, oob_arith=OOBArithPolicy.ISO_UB)
        assert out.ub is UB.OUT_OF_BOUNDS_PTR_ARITH

    def test_envelope_accepts_one_below(self):
        out = run_with(self.BELOW,
                       oob_arith=OOBArithPolicy.PORTABLE_ENVELOPE)
        assert out.ok

    def test_arch_accepts_one_below(self):
        out = run_with(self.BELOW,
                       oob_arith=OOBArithPolicy.ARCH_REPRESENTABLE)
        assert out.ok

    def test_access_still_checked_under_loose_options(self):
        src = """
int main(void) {
  int a[4];
  int *p = a - 1;
  return *p;        /* construction allowed; access never is */
}
"""
        out = run_with(src, oob_arith=OOBArithPolicy.ARCH_REPRESENTABLE)
        assert out.ub is UB.CHERI_BOUNDS_VIOLATION


class TestIntptrOptions:
    EXCURSION = """
#include <stdint.h>
int main(void) {
  int x;
  uintptr_t u = (uintptr_t)&x;
  uintptr_t far = u + (1 << 24);
  uintptr_t back = far - (1 << 24);
  return (int)(back - u);
}
"""
    ONE_PAST = """
#include <stdint.h>
int main(void) {
  int x;
  uintptr_t u = (uintptr_t)&x;
  u = u + sizeof(int);      /* one past: fine under every option */
  return 0;
}
"""

    def test_option1_rejects_excursion(self):
        out = run_with(self.EXCURSION,
                       intptr=IntptrPolicy.UB_OUTSIDE_BOUNDS)
        assert out.ub is UB.OUT_OF_BOUNDS_PTR_ARITH

    def test_option2_rejects_excursion(self):
        out = run_with(self.EXCURSION,
                       intptr=IntptrPolicy.UB_OUTSIDE_REPRESENTABLE)
        assert out.ub is UB.OUT_OF_BOUNDS_PTR_ARITH

    def test_option3_defines_excursion(self):
        out = run_with(self.EXCURSION,
                       intptr=IntptrPolicy.DEFINED_WITH_GHOST)
        assert out.ok

    @pytest.mark.parametrize("policy", list(IntptrPolicy),
                             ids=lambda p: p.name)
    def test_one_past_fine_everywhere(self, policy):
        assert run_with(self.ONE_PAST, intptr=policy).ok

    def test_option2_accepts_small_roam(self):
        """Option (2) is strictly looser than (1): within the
        representable window but beyond one-past."""
        src = """
#include <stdint.h>
int main(void) {
  int x;
  uintptr_t u = (uintptr_t)&x;
  u = u + 64;               /* beyond one-past, still representable */
  return 0;
}
"""
        out1 = run_with(src, intptr=IntptrPolicy.UB_OUTSIDE_BOUNDS)
        out2 = run_with(src, intptr=IntptrPolicy.UB_OUTSIDE_REPRESENTABLE)
        assert out1.kind is OutcomeKind.UNDEFINED
        assert out2.ok


class TestEqualityOptions:
    UNTAGGED = """
#include <cheriintrin.h>
int main(void) {
  int x;
  int *p = &x;
  int *q = cheri_tag_clear(p);
  return p == q ? 0 : 1;
}
"""

    def test_option1_sees_tag(self):
        out = run_with(self.UNTAGGED,
                       equality=EqualityPolicy.EXACT_WITH_TAGS)
        assert out.exit_status == 1

    def test_option2_ignores_tag(self):
        out = run_with(self.UNTAGGED,
                       equality=EqualityPolicy.EXACT_WITHOUT_TAGS)
        assert out.exit_status == 0

    def test_option3_address_only(self):
        out = run_with(self.UNTAGGED,
                       equality=EqualityPolicy.ADDRESS_ONLY)
        assert out.exit_status == 0

    def test_option2_sees_bounds(self):
        src = """
#include <cheriintrin.h>
int main(void) {
  char buf[32];
  char *n = cheri_bounds_set(buf, 8);
  return buf == n ? 0 : 1;
}
"""
        assert run_with(src,
                        equality=EqualityPolicy.EXACT_WITHOUT_TAGS
                        ).exit_status == 1
        assert run_with(src,
                        equality=EqualityPolicy.ADDRESS_ONLY
                        ).exit_status == 0


class TestRevocation:
    UAF = """
#include <stdlib.h>
int main(void) {
  int *p = malloc(sizeof(int));
  *p = 5;
  free(p);
  return *p;
}
"""

    def test_plain_hardware_misses_uaf(self):
        out = by_name("clang-morello-O0").run(self.UAF)
        assert out.kind is OutcomeKind.EXIT and out.exit_status == 5

    def test_cheriot_revocation_catches_uaf(self):
        out = by_name("cheriot-O0").run(self.UAF)
        assert out.kind is OutcomeKind.TRAP
        assert out.trap is TrapKind.TAG_VIOLATION

    def test_revocation_spares_unrelated_capabilities(self):
        src = """
#include <stdlib.h>
int main(void) {
  int *keep = malloc(sizeof(int));
  int *dead = malloc(sizeof(int));
  *keep = 1;
  free(dead);
  return *keep;     /* keep must survive the sweep */
}
"""
        out = by_name("cheriot-O0").run(src)
        assert out.exit_status == 1

    def test_revocation_sweeps_aliases(self):
        src = """
#include <stdlib.h>
int *alias;
int main(void) {
  int *p = malloc(sizeof(int));
  alias = p;          /* second stored copy */
  free(p);
  return *alias;      /* also revoked */
}
"""
        out = by_name("cheriot-O0").run(src)
        assert out.kind is OutcomeKind.TRAP

    def test_suite_temporal_cases_trap_under_revocation(self):
        from repro.testsuite.suite import cases_by_category
        from repro.testsuite.categories import Category
        impl = by_name("cheriot-O0")
        for case in cases_by_category(Category.TEMPORAL):
            if case.name in ("temporal-use-after-free",
                             "temporal-write-after-free"):
                out = impl.run(case.source)
                assert out.kind is OutcomeKind.TRAP, (case.name,
                                                      out.describe())
