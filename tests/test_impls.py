"""The simulated implementations and the Appendix-A divergence."""

import pytest

from repro.errors import OutcomeKind
from repro.impls import (
    ALL_IMPLEMENTATIONS, APPENDIX_IMPLEMENTATIONS, CERBERUS, by_name,
)
from repro.memory.model import Mode

APPENDIX_SRC = """
#include <stdint.h>
#include <stdio.h>
#include <limits.h>
int main(void) {
  int x[2]={42,43};
  intptr_t ip = (intptr_t)&x;
  print_cap("cap", ip);
  intptr_t ip2 = ip & UINT_MAX;
  print_cap("cap&uint", ip2);
  intptr_t ip3 = ip & INT_MAX;
  print_cap("cap&int", ip3);
  return 0;
}
"""


class TestRegistry:
    def test_names_unique(self):
        names = [impl.name for impl in ALL_IMPLEMENTATIONS]
        assert len(names) == len(set(names))

    def test_by_name(self):
        assert by_name("cerberus") is CERBERUS
        with pytest.raises(KeyError):
            by_name("tcc")

    def test_reference_is_abstract(self):
        assert CERBERUS.mode is Mode.ABSTRACT
        assert CERBERUS.opt_level == 0

    def test_compiled_impls_are_hardware(self):
        for impl in ALL_IMPLEMENTATIONS:
            if impl is not CERBERUS:
                assert impl.mode is Mode.HARDWARE

    def test_appendix_set_covers_three_compilers(self):
        names = {i.name for i in APPENDIX_IMPLEMENTATIONS}
        assert "cerberus" in names
        assert any("clang-riscv" in n for n in names)
        assert any("clang-morello" in n for n in names)
        assert any("gcc-morello" in n for n in names)

    def test_fresh_models_are_independent(self):
        m1 = CERBERUS.fresh_model()
        m2 = CERBERUS.fresh_model()
        assert m1.state is not m2.state


class TestAppendixDivergence:
    """The Appendix-A experiment: who shows non-representability for
    which mask is an allocator-address-range effect."""

    def test_cerberus_ghost_only_for_int_mask(self):
        out = CERBERUS.run(APPENDIX_SRC)
        assert out.ok
        lines = out.stdout.splitlines()
        assert lines[0].startswith("cap (@")
        assert "notag" not in lines[1]      # & UINT_MAX: identity
        assert "[?-?]" in lines[2]          # & INT_MAX: ghost state
        assert "(notag)" in lines[2]

    @pytest.mark.parametrize("name", ["clang-riscv-O0", "clang-morello-O0"])
    def test_clang_both_masks_invalid(self, name):
        out = by_name(name).run(APPENDIX_SRC)
        assert out.ok
        lines = out.stdout.splitlines()
        assert "(invalid)" not in lines[0]
        assert "(invalid)" in lines[1]
        assert "(invalid)" in lines[2]

    @pytest.mark.parametrize("name", ["gcc-morello-O0", "gcc-morello-O3"])
    def test_gcc_unaffected(self, name):
        out = by_name(name).run(APPENDIX_SRC)
        assert out.ok
        assert "(invalid)" not in out.stdout

    def test_address_ranges_match_the_paper_shape(self):
        """Clang stacks sit above 2^32; GCC's below 2^31; Cerberus just
        below 2^32 (so only the INT_MAX mask moves the address)."""
        probe = """
#include <stdint.h>
#include <stdio.h>
int main(void) {
  int x;
  printf("%zx\\n", (ptraddr_t)&x);
  return 0;
}
"""
        addr = {}
        for name in ("cerberus", "clang-riscv-O0", "clang-morello-O0",
                     "gcc-morello-O0"):
            out = by_name(name).run(probe)
            addr[name] = int(out.stdout.strip(), 16)
        assert addr["gcc-morello-O0"] < 2**31
        assert 2**31 < addr["cerberus"] < 2**32
        assert addr["clang-riscv-O0"] > 2**32
        assert addr["clang-morello-O0"] > 2**40

    def test_hardware_stdout_has_no_provenance(self):
        out = by_name("clang-riscv-O0").run(APPENDIX_SRC)
        assert "@" not in out.stdout


class TestSubobjectImplementation:
    def test_member_narrowing(self):
        src = """
#include <cheriintrin.h>
struct pair { int a; int b; };
int main(void) {
  struct pair p;
  int *pb = &p.b;
  return (int)cheri_length_get(pb);
}
"""
        conservative = by_name("clang-morello-O3").run(src)
        strict = by_name("clang-morello-O3-subobject-safe").run(src)
        assert conservative.exit_status == 8   # whole struct
        assert strict.exit_status == 4         # just the member
